//! Connected components (the paper seeds clustering from the largest
//! component, §4: "all experiments start from a single arbitrary vertex in
//! the largest component").

use crate::csr::Graph;

/// Labels each vertex with a component id (the smallest vertex id in its
/// component), via BFS. `O(n + m)`.
pub fn connected_components(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut queue = Vec::new();
    for start in 0..n as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = start;
        queue.clear();
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = start;
                    queue.push(w);
                }
            }
        }
    }
    label
}

/// Returns the members of the largest connected component (ties broken by
/// smallest component id), sorted by vertex id.
pub fn largest_component(g: &Graph) -> Vec<u32> {
    let labels = connected_components(g);
    let n = g.num_vertices();
    let mut counts = vec![0u32; n];
    for &l in &labels {
        counts[l as usize] += 1;
    }
    let best = (0..n)
        .max_by_key(|&i| (counts[i], std::cmp::Reverse(i)))
        .unwrap_or(0) as u32;
    (0..n as u32)
        .filter(|&v| labels[v as usize] == best)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn single_component() {
        let g = gen::cycle(10);
        let labels = connected_components(&g);
        assert!(labels.iter().all(|&l| l == 0));
        assert_eq!(largest_component(&g).len(), 10);
    }

    #[test]
    fn two_components_and_isolated_vertex() {
        // 0-1-2 path, 3-4 edge, 5 isolated.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[5], 5);
        assert_eq!(largest_component(&g), vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph_components() {
        let g = Graph::from_edges(3, &[]);
        assert_eq!(connected_components(&g), vec![0, 1, 2]);
        assert_eq!(largest_component(&g).len(), 1);
    }
}
