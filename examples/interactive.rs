//! Interactive cluster exploration — the paper's motivating workload:
//! "an analyst would run a computation, study the result, and based on
//! that determine what computation to run next. To keep response times
//! low, it is important that a single local computation be made
//! efficient."
//!
//! A tiny command-driven explorer over a generated graph. Reads commands
//! from stdin (one per line) and answers instantly using the parallel
//! algorithms:
//!
//! ```text
//! cluster <seed> [alpha] [eps]   PR-Nibble + sweep from <seed>
//! nibble <seed> [T] [eps]        Nibble + sweep from <seed>
//! hk <seed> [t] [N] [eps]        HK-PR + sweep from <seed>
//! degree <v>                     degree of v
//! stats                          graph statistics
//! quit
//! ```
//!
//! ```sh
//! printf 'stats\ncluster 42\nquit\n' | cargo run --release --example interactive
//! ```

use plgc::cluster as lgc;
use plgc::{Pool, Seed};
use std::io::BufRead;
use std::time::Instant;

fn main() {
    let (g, _labels) = plgc::graph::gen::sbm(&[80; 12], 0.2, 0.002, 11);
    let pool = Pool::with_default_threads();
    println!(
        "loaded SBM graph: {} vertices, {} edges ({} threads). Type 'help'.",
        g.num_vertices(),
        g.num_edges(),
        pool.num_threads()
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let parts: Vec<&str> = line.split_whitespace().collect();
        let t0 = Instant::now();
        match parts.as_slice() {
            [] => continue,
            ["quit"] | ["exit"] => break,
            ["help"] => {
                println!("commands: cluster <seed> [alpha] [eps] | nibble <seed> [T] [eps] | hk <seed> [t] [N] [eps] | degree <v> | stats | quit");
            }
            ["stats"] => {
                println!(
                    "n = {}, m = {}, max degree = {}",
                    g.num_vertices(),
                    g.num_edges(),
                    g.max_degree()
                );
            }
            ["degree", v] => match parse_vertex(v, &g) {
                Some(v) => println!("d({v}) = {}", g.degree(v)),
                None => println!("vertex out of range"),
            },
            ["cluster", s, rest @ ..] => {
                if let Some(v) = parse_vertex(s, &g) {
                    let alpha = rest.first().and_then(|x| x.parse().ok()).unwrap_or(0.05);
                    let eps = rest.get(1).and_then(|x| x.parse().ok()).unwrap_or(1e-6);
                    let params = lgc::PrNibbleParams {
                        alpha,
                        eps,
                        ..Default::default()
                    };
                    let d = lgc::prnibble_par(&pool, &g, &Seed::single(v), &params);
                    answer(&g, &pool, &d, t0);
                } else {
                    println!("vertex out of range");
                }
            }
            ["nibble", s, rest @ ..] => {
                if let Some(v) = parse_vertex(s, &g) {
                    let t_max = rest.first().and_then(|x| x.parse().ok()).unwrap_or(20);
                    let eps = rest.get(1).and_then(|x| x.parse().ok()).unwrap_or(1e-7);
                    let d = lgc::nibble_par(
                        &pool,
                        &g,
                        &Seed::single(v),
                        &lgc::NibbleParams {
                            t_max,
                            eps,
                            ..Default::default()
                        },
                    );
                    answer(&g, &pool, &d, t0);
                } else {
                    println!("vertex out of range");
                }
            }
            ["hk", s, rest @ ..] => {
                if let Some(v) = parse_vertex(s, &g) {
                    let t = rest.first().and_then(|x| x.parse().ok()).unwrap_or(10.0);
                    let n_levels = rest.get(1).and_then(|x| x.parse().ok()).unwrap_or(20);
                    let eps = rest.get(2).and_then(|x| x.parse().ok()).unwrap_or(1e-6);
                    let d = lgc::hkpr_par(
                        &pool,
                        &g,
                        &Seed::single(v),
                        &lgc::HkprParams {
                            t,
                            n_levels,
                            eps,
                            ..Default::default()
                        },
                    );
                    answer(&g, &pool, &d, t0);
                } else {
                    println!("vertex out of range");
                }
            }
            _ => println!("unknown command (try 'help')"),
        }
    }
}

fn parse_vertex(s: &str, g: &plgc::Graph) -> Option<u32> {
    s.parse::<u32>()
        .ok()
        .filter(|&v| (v as usize) < g.num_vertices())
}

fn answer(g: &plgc::Graph, pool: &Pool, d: &lgc::Diffusion, t0: Instant) {
    let sweep = lgc::sweep_cut_par(pool, g, &d.p);
    let mut preview: Vec<u32> = sweep.cluster().to_vec();
    preview.sort_unstable();
    preview.truncate(12);
    println!(
        "cluster of {} vertices, phi = {:.5}, support = {}, {:.1} ms  (first members: {:?}{})",
        sweep.best_size,
        sweep.best_conductance,
        d.support_size(),
        t0.elapsed().as_secs_f64() * 1e3,
        preview,
        if sweep.best_size > 12 { ", ..." } else { "" }
    );
}
