//! Interactive cluster exploration — the paper's motivating workload:
//! "an analyst would run a computation, study the result, and based on
//! that determine what computation to run next. To keep response times
//! low, it is important that a single local computation be made
//! efficient."
//!
//! This is exactly the workload the [`Service`] exists for: several
//! resident graphs registered at startup over one shared pool, every
//! command served as a `&self` query through a per-graph handle, scratch
//! buffers checked out warm from command to command, ψ tables and graph
//! statistics cached across them.
//!
//! A tiny command-driven explorer over two generated graphs. Reads
//! commands from stdin (one per line) and answers instantly using the
//! parallel algorithms:
//!
//! ```text
//! graphs                         list the registered graphs
//! use <graph>                    switch the active graph
//! cluster <seed> [alpha] [eps]   PR-Nibble + sweep from <seed>
//! nibble <seed> [T] [eps]        Nibble + sweep from <seed>
//! hk <seed> [t] [N] [eps]        HK-PR + sweep from <seed>
//! esp <seed> [steps]             evolving-set process from <seed>
//! degree <v>                     degree of v
//! stats                          graph statistics (cache-served)
//! quit
//! ```
//!
//! ```sh
//! printf 'stats\ncluster 42\nuse rmat\ncluster 7\nquit\n' | \
//!     cargo run --release --example interactive
//! ```

use plgc::cluster as lgc;
use plgc::{Algorithm, Pool, Query, Seed, Service};
use std::io::BufRead;
use std::time::Instant;

fn main() {
    let (sbm, _labels) = plgc::graph::gen::sbm(&[80; 12], 0.2, 0.002, 11);
    let service = Service::builder()
        .pool(Pool::shared(
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        ))
        .add_graph("sbm", sbm)
        .add_graph("rmat", plgc::graph::gen::rmat_graph500(11, 8, 5))
        .build();
    let mut active = "sbm".to_string();
    println!(
        "serving {} graphs over one {}-thread pool: {}. Type 'help'.",
        service.num_graphs(),
        service.pool().num_threads(),
        service
            .names()
            .map(|n| {
                let s = service.summary(n).unwrap();
                format!("{n} ({}v/{}e)", s.num_vertices, s.num_edges)
            })
            .collect::<Vec<_>>()
            .join(", ")
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let parts: Vec<&str> = line.split_whitespace().collect();
        let t0 = Instant::now();
        let engine = service.engine(&active).expect("active graph registered");
        let g = service
            .graph(&active)
            .expect("interactive graphs use the plain backend")
            .as_ref();
        // Parsed command → one engine query (None for non-query commands).
        let query: Option<Query> = match parts.as_slice() {
            [] => continue,
            ["quit"] | ["exit"] => break,
            ["help"] => {
                println!("commands: graphs | use <graph> | cluster <seed> [alpha] [eps] | nibble <seed> [T] [eps] | hk <seed> [t] [N] [eps] | esp <seed> [steps] | degree <v> | stats | quit");
                None
            }
            ["graphs"] => {
                for name in service.names() {
                    let marker = if name == active { "*" } else { " " };
                    println!("{marker} {name}");
                }
                None
            }
            ["use", name] => {
                if service.engine(name).is_some() {
                    active = name.to_string();
                    println!("now querying '{active}'");
                } else {
                    println!(
                        "unknown graph (have: {})",
                        service.names().collect::<Vec<_>>().join(", ")
                    );
                }
                None
            }
            ["stats"] => {
                let s = service.summary(&active).expect("active graph registered");
                println!(
                    "{active}: n = {}, m = {}, max degree = {}, isolated = {}",
                    s.num_vertices, s.num_edges, s.max_degree, s.isolated
                );
                None
            }
            ["degree", v] => {
                match parse_vertex(v, g) {
                    Some(v) => println!("d({v}) = {}", g.degree(v)),
                    None => println!("vertex out of range"),
                }
                None
            }
            ["cluster", s, rest @ ..] => vertex_or_complain(s, g).map(|v| {
                let alpha = rest.first().and_then(|x| x.parse().ok()).unwrap_or(0.05);
                let eps = rest.get(1).and_then(|x| x.parse().ok()).unwrap_or(1e-6);
                Query::new(
                    Seed::single(v),
                    Algorithm::PrNibble(lgc::PrNibbleParams {
                        alpha,
                        eps,
                        ..Default::default()
                    }),
                )
            }),
            ["nibble", s, rest @ ..] => vertex_or_complain(s, g).map(|v| {
                let t_max = rest.first().and_then(|x| x.parse().ok()).unwrap_or(20);
                let eps = rest.get(1).and_then(|x| x.parse().ok()).unwrap_or(1e-7);
                Query::new(
                    Seed::single(v),
                    Algorithm::Nibble(lgc::NibbleParams {
                        t_max,
                        eps,
                        ..Default::default()
                    }),
                )
            }),
            ["hk", s, rest @ ..] => vertex_or_complain(s, g).map(|v| {
                let t = rest.first().and_then(|x| x.parse().ok()).unwrap_or(10.0);
                let n_levels = rest.get(1).and_then(|x| x.parse().ok()).unwrap_or(20);
                let eps = rest.get(2).and_then(|x| x.parse().ok()).unwrap_or(1e-6);
                Query::new(
                    Seed::single(v),
                    Algorithm::Hkpr(lgc::HkprParams {
                        t,
                        n_levels,
                        eps,
                        ..Default::default()
                    }),
                )
            }),
            ["esp", s, rest @ ..] => vertex_or_complain(s, g).map(|v| {
                let max_steps = rest.first().and_then(|x| x.parse().ok()).unwrap_or(50);
                Query::new(
                    Seed::single(v),
                    Algorithm::Evolving(lgc::EvolvingParams {
                        max_steps,
                        ..Default::default()
                    }),
                )
            }),
            [cmd] if ["cluster", "nibble", "hk", "esp"].contains(cmd) => {
                println!("missing seed vertex (try '{cmd} 0')");
                None
            }
            _ => {
                println!("unknown command (try 'help')");
                None
            }
        };
        if let Some(q) = query {
            answer(&engine.run(&q), t0);
        }
    }
}

fn parse_vertex(s: &str, g: &plgc::Graph) -> Option<u32> {
    s.parse::<u32>()
        .ok()
        .filter(|&v| (v as usize) < g.num_vertices())
}

/// As [`parse_vertex`], but tells the user when the argument is bad.
fn vertex_or_complain(s: &str, g: &plgc::Graph) -> Option<u32> {
    let v = parse_vertex(s, g);
    if v.is_none() {
        println!("vertex out of range");
    }
    v
}

fn answer(res: &lgc::ClusterResult, t0: Instant) {
    let mut preview: Vec<u32> = res.cluster.clone();
    preview.sort_unstable();
    preview.truncate(12);
    println!(
        "cluster of {} vertices, phi = {:.5}, support = {}, {:.1} ms  (first members: {:?}{})",
        res.cluster.len(),
        res.conductance,
        res.diffusion.support_size(),
        t0.elapsed().as_secs_f64() * 1e3,
        preview,
        if res.cluster.len() > 12 { ", ..." } else { "" }
    );
}
