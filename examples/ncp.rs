//! Network community profile (NCP) of a graph — Figure 12 of the paper.
//!
//! Runs PR-Nibble from many random seeds across a parameter grid and
//! prints the best conductance found at each cluster size, as CSV
//! (`size,conductance`). Pipe to a file and plot log-log to see the
//! paper's characteristic dip-then-rise shape on community-bearing
//! graphs.
//!
//! ```sh
//! cargo run --release --example ncp > ncp.csv
//! ```

use plgc::{Engine, NcpParams};

fn main() {
    // An R-MAT graph standing in for the paper's social networks.
    let g = plgc::graph::gen::rmat_graph500(13, 8, 99);
    eprintln!(
        "R-MAT scale 13: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // An NCP scan is hundreds of back-to-back PR-Nibble + sweep queries
    // over one graph — the engine's workspace recycles every scratch
    // buffer between them instead of reallocating per grid point.
    let engine = Engine::builder(&g).build();
    let params = NcpParams {
        num_seeds: 60,
        alphas: vec![0.1, 0.01],
        epsilons: vec![1e-4, 1e-5, 1e-6],
        rng_seed: 4,
        ..Default::default()
    };
    eprintln!(
        "running {} PR-Nibble diffusions ({} seeds x {} alphas x {} epsilons)...",
        params.num_seeds * params.alphas.len() * params.epsilons.len(),
        params.num_seeds,
        params.alphas.len(),
        params.epsilons.len()
    );

    let t0 = std::time::Instant::now();
    let points = engine.ncp(&params);
    eprintln!(
        "done in {:.2?}; {} profile points",
        t0.elapsed(),
        points.len()
    );

    println!("size,conductance");
    for p in &points {
        println!("{},{}", p.size, p.conductance);
    }

    if let Some(best) = points
        .iter()
        .min_by(|a, b| a.conductance.partial_cmp(&b.conductance).unwrap())
    {
        eprintln!(
            "profile minimum: phi = {:.5} at size {}",
            best.conductance, best.size
        );
    }
}
