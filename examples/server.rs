//! A multi-tenant query server **simulation** — in-process, no sockets:
//! the workload the [`Service`] was designed for, with several resident
//! graphs, one shared thread pool, and many concurrent client threads
//! issuing mixed-algorithm local-cluster queries.
//!
//! For the real network front door — a TCP listener speaking the
//! length-prefixed binary protocol, with priority scheduling, per-tenant
//! quotas, and a Prometheus-style metrics endpoint — see the
//! `lgc-server` binary and [`plgc::server`] (protocol spec in
//! `crates/server/PROTOCOL.md`). This example keeps everything in one
//! process so the Service/EngineHandle mechanics stay easy to read.
//!
//! Three tenants register their graphs (a social-network stand-in, a
//! planted-community SBM, a mesh-like local graph); a fleet of client
//! threads then drains a deterministic stream of queries — each client
//! grabbing a `Copy` engine handle per request and calling `&self`
//! methods, no mutex around any engine, no per-graph worker fleet. At
//! the end the server prints per-tenant traffic, latency percentiles,
//! and cache/workspace observability counters.
//!
//! Tenants also pick their storage/memory trade-offs: the big "social"
//! graph is stored on the byte-compressed CSR backend (same bits out,
//! fewer bytes resident), and the "mesh" tenant caps its warm workspace
//! pool with an explicit byte budget.
//!
//! Each tenant also declares its **query-lifecycle policy** via
//! [`plgc::EngineLimits`]: "social" runs under a per-tenant deadline
//! SLA, "communities" caps deterministic work per query, and "mesh"
//! bounds concurrency with admission control. Clients call `try_run`,
//! retry `Overloaded` sheds once, and the server closes with a per-
//! tenant robustness report — admitted / completed / shed / tripped and
//! the shed rate — straight from [`Service::lifecycle`] counters.
//!
//! ```sh
//! cargo run --release --example server
//! ```

use plgc::cluster as lgc;
use plgc::{Algorithm, EngineLimits, Pool, Query, QueryBudget, QueryError, Seed, Service};
use std::time::{Duration, Instant};

/// Queries per client thread.
const QUERIES_PER_CLIENT: usize = 40;
/// Client threads (OS threads issuing queries concurrently).
const CLIENTS: usize = 4;

/// The deterministic "request log": client `c`'s `i`-th request.
fn request(tenants: &[&str], c: usize, i: usize) -> (String, Query) {
    let tenant = tenants[(c + i) % tenants.len()];
    let v = ((c * 131 + i * 17) % 500) as u32;
    let algo = match i % 4 {
        0 => Algorithm::PrNibble(lgc::PrNibbleParams {
            alpha: 0.05,
            eps: 1e-5,
            ..Default::default()
        }),
        1 => Algorithm::Hkpr(lgc::HkprParams {
            t: 5.0,
            n_levels: 10,
            eps: 1e-5,
            ..Default::default()
        }),
        2 => Algorithm::Nibble(lgc::NibbleParams {
            t_max: 10,
            eps: 1e-6,
            ..Default::default()
        }),
        _ => Algorithm::RandHkpr(lgc::RandHkprParams {
            walks: 3_000,
            rng_seed: (c * 1000 + i) as u64,
            ..Default::default()
        }),
    };
    (tenant.to_string(), Query::new(Seed::single(v), algo))
}

fn main() {
    // One pool for the whole process, machine-sized.
    let pool = Pool::shared(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let (sbm, _) = plgc::graph::gen::sbm(&[100; 8], 0.15, 0.002, 3);
    // The biggest tenant stores its adjacency byte-compressed; queries
    // over it return the same bits as plain CSR.
    let social = plgc::CsrCompressed::from_graph(&plgc::graph::gen::rmat_graph500(12, 8, 7));
    let service = Service::builder()
        .pool(pool)
        // Per-tenant SLA: every "social" query runs under a default
        // wall-clock deadline (individual queries can still override
        // field-wise via `Query::with_budget`).
        .add_graph_with_limits(
            "social",
            social,
            EngineLimits {
                default_budget: QueryBudget::unlimited().with_deadline(Duration::from_millis(250)),
                ..Default::default()
            },
        )
        // Deterministic work cap: no single "communities" query may
        // traverse more than 2M edges; heavier ones come back as typed
        // `WorkBudgetExceeded` errors carrying their best-so-far cut.
        .add_graph_with_limits(
            "communities",
            sbm,
            EngineLimits {
                default_budget: QueryBudget::unlimited().with_max_edges_traversed(2_000_000),
                ..Default::default()
            },
        )
        // An explicit workspace byte budget (at most 8 MiB of scratch
        // parked or in flight) plus admission control: at most two
        // "mesh" queries execute concurrently, the rest shed with
        // `Overloaded` and a retry-after hint.
        .add_graph_with_limits(
            "mesh",
            plgc::graph::gen::rand_local(4_000, 6, 1),
            EngineLimits {
                workspace_budget: Some(8 << 20),
                max_in_flight: Some(2),
                ..Default::default()
            },
        )
        .build();
    let tenants: Vec<&str> = service.names().collect();
    println!("tenants:");
    for name in &tenants {
        let s = service.summary(name).unwrap();
        println!(
            "  {name:<12} {:>6} vertices {:>8} edges (max degree {}) — {} graph bytes, {:.2} adjacency B/edge",
            s.num_vertices,
            s.num_edges,
            s.max_degree,
            s.memory_bytes,
            s.adjacency_bytes as f64 / (2 * s.num_edges).max(1) as f64
        );
    }
    println!(
        "pool: {} threads shared by all tenants; {CLIENTS} clients × {QUERIES_PER_CLIENT} queries\n",
        service.pool().num_threads()
    );

    // The client fleet: each thread drains its slice of the request log,
    // timing every query.
    let t0 = Instant::now();
    let per_client: Vec<Vec<(String, f64, usize)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = &service;
                let tenants = &tenants;
                scope.spawn(move || {
                    let mut log = Vec::with_capacity(QUERIES_PER_CLIENT);
                    for i in 0..QUERIES_PER_CLIENT {
                        let (tenant, query) = request(tenants, c, i);
                        let engine = service.engine(&tenant).expect("tenant registered");
                        let q0 = Instant::now();
                        // The governed path: typed errors instead of
                        // unbounded work. Shed requests get one retry.
                        let outcome = engine.try_run(&query).or_else(|err| {
                            if matches!(err, QueryError::Overloaded { .. }) {
                                std::thread::yield_now();
                                engine.try_run(&query)
                            } else {
                                Err(err)
                            }
                        });
                        let cluster_len = match &outcome {
                            Ok(res) => res.cluster.len(),
                            // A tripped query still reports its
                            // best-so-far cut, billable work and all.
                            Err(e) => e
                                .partial()
                                .and_then(|p| p.cluster())
                                .map_or(0, <[u32]>::len),
                        };
                        log.push((tenant, q0.elapsed().as_secs_f64(), cluster_len));
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    // Per-tenant traffic report.
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10}",
        "tenant", "queries", "mean ms", "p95 ms", "max ms"
    );
    for name in &tenants {
        let mut lats: Vec<f64> = per_client
            .iter()
            .flatten()
            .filter(|(t, _, _)| t == name)
            .map(|&(_, l, _)| l)
            .collect();
        lats.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = lats.iter().sum::<f64>() / lats.len().max(1) as f64;
        let p95 = lats[(lats.len() * 95 / 100).min(lats.len().saturating_sub(1))];
        let max = lats.last().copied().unwrap_or(0.0);
        println!(
            "{name:<12} {:>8} {:>10.2} {:>10.2} {:>10.2}",
            lats.len(),
            mean * 1e3,
            p95 * 1e3,
            max * 1e3
        );
    }
    let total = CLIENTS * QUERIES_PER_CLIENT;
    println!(
        "\n{total} queries in {:.2}s — {:.0} queries/s across {} graphs on one pool",
        wall,
        total as f64 / wall,
        service.num_graphs()
    );

    // Observability: what the shared runtime amortized.
    println!("\ncache / workspace state after the run:");
    for name in &tenants {
        let cache = service.cache(name).unwrap();
        let (hits, misses) = cache.psi_stats();
        println!(
            "  {name:<12} psi tables: {hits} hits / {misses} misses; sweep support high-watermark: {}",
            cache.sweep_hint()
        );
    }

    // Robustness: per-tenant lifecycle counters — who was admitted, who
    // was shed at the door, whose budget tripped mid-flight.
    println!(
        "\n{:<12} {:>9} {:>10} {:>6} {:>8} {:>6} {:>10}",
        "tenant", "admitted", "completed", "shed", "tripped", "invalid", "shed rate"
    );
    for name in &tenants {
        let s = service.lifecycle(name).unwrap();
        println!(
            "{name:<12} {:>9} {:>10} {:>6} {:>8} {:>6} {:>9.1}%",
            s.admitted,
            s.completed,
            s.shed(),
            s.deadline_tripped + s.work_tripped + s.cancelled,
            s.invalid_seed,
            s.shed_rate() * 100.0
        );
    }
}
