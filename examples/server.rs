//! A multi-tenant query server simulation — the workload the [`Service`]
//! was designed for: several resident graphs, one shared thread pool,
//! many concurrent clients issuing mixed-algorithm local-cluster
//! queries.
//!
//! Three tenants register their graphs (a social-network stand-in, a
//! planted-community SBM, a mesh-like local graph); a fleet of client
//! threads then drains a deterministic stream of queries — each client
//! grabbing a `Copy` engine handle per request and calling `&self`
//! methods, no mutex around any engine, no per-graph worker fleet. At
//! the end the server prints per-tenant traffic, latency percentiles,
//! and cache/workspace observability counters.
//!
//! Tenants also pick their storage/memory trade-offs: the big "social"
//! graph is stored on the byte-compressed CSR backend (same bits out,
//! fewer bytes resident), and the "mesh" tenant caps its warm workspace
//! pool with an explicit byte budget.
//!
//! ```sh
//! cargo run --release --example server
//! ```

use plgc::cluster as lgc;
use plgc::{Algorithm, Pool, Query, Seed, Service};
use std::time::Instant;

/// Queries per client thread.
const QUERIES_PER_CLIENT: usize = 40;
/// Client threads (OS threads issuing queries concurrently).
const CLIENTS: usize = 4;

/// The deterministic "request log": client `c`'s `i`-th request.
fn request(tenants: &[&str], c: usize, i: usize) -> (String, Query) {
    let tenant = tenants[(c + i) % tenants.len()];
    let v = ((c * 131 + i * 17) % 500) as u32;
    let algo = match i % 4 {
        0 => Algorithm::PrNibble(lgc::PrNibbleParams {
            alpha: 0.05,
            eps: 1e-5,
            ..Default::default()
        }),
        1 => Algorithm::Hkpr(lgc::HkprParams {
            t: 5.0,
            n_levels: 10,
            eps: 1e-5,
            ..Default::default()
        }),
        2 => Algorithm::Nibble(lgc::NibbleParams {
            t_max: 10,
            eps: 1e-6,
            ..Default::default()
        }),
        _ => Algorithm::RandHkpr(lgc::RandHkprParams {
            walks: 3_000,
            rng_seed: (c * 1000 + i) as u64,
            ..Default::default()
        }),
    };
    (tenant.to_string(), Query::new(Seed::single(v), algo))
}

fn main() {
    // One pool for the whole process, machine-sized.
    let pool = Pool::shared(std::thread::available_parallelism().map_or(1, |n| n.get()));
    let (sbm, _) = plgc::graph::gen::sbm(&[100; 8], 0.15, 0.002, 3);
    // The biggest tenant stores its adjacency byte-compressed; queries
    // over it return the same bits as plain CSR.
    let social = plgc::CsrCompressed::from_graph(&plgc::graph::gen::rmat_graph500(12, 8, 7));
    let service = Service::builder()
        .pool(pool)
        .add_graph("social", social)
        .add_graph("communities", sbm)
        // An explicit workspace byte budget: at most 8 MiB of scratch
        // stays parked (or in flight via `try_run`) for this tenant.
        .add_graph_with_budget("mesh", plgc::graph::gen::rand_local(4_000, 6, 1), 8 << 20)
        .build();
    let tenants: Vec<&str> = service.names().collect();
    println!("tenants:");
    for name in &tenants {
        let s = service.summary(name).unwrap();
        println!(
            "  {name:<12} {:>6} vertices {:>8} edges (max degree {}) — {} graph bytes, {:.2} adjacency B/edge",
            s.num_vertices,
            s.num_edges,
            s.max_degree,
            s.memory_bytes,
            s.adjacency_bytes as f64 / (2 * s.num_edges).max(1) as f64
        );
    }
    println!(
        "pool: {} threads shared by all tenants; {CLIENTS} clients × {QUERIES_PER_CLIENT} queries\n",
        service.pool().num_threads()
    );

    // The client fleet: each thread drains its slice of the request log,
    // timing every query.
    let t0 = Instant::now();
    let per_client: Vec<Vec<(String, f64, usize)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = &service;
                let tenants = &tenants;
                scope.spawn(move || {
                    let mut log = Vec::with_capacity(QUERIES_PER_CLIENT);
                    for i in 0..QUERIES_PER_CLIENT {
                        let (tenant, query) = request(tenants, c, i);
                        let engine = service.engine(&tenant).expect("tenant registered");
                        let q0 = Instant::now();
                        let res = engine.run(&query);
                        log.push((tenant, q0.elapsed().as_secs_f64(), res.cluster.len()));
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    // Per-tenant traffic report.
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10}",
        "tenant", "queries", "mean ms", "p95 ms", "max ms"
    );
    for name in &tenants {
        let mut lats: Vec<f64> = per_client
            .iter()
            .flatten()
            .filter(|(t, _, _)| t == name)
            .map(|&(_, l, _)| l)
            .collect();
        lats.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = lats.iter().sum::<f64>() / lats.len().max(1) as f64;
        let p95 = lats[(lats.len() * 95 / 100).min(lats.len().saturating_sub(1))];
        let max = lats.last().copied().unwrap_or(0.0);
        println!(
            "{name:<12} {:>8} {:>10.2} {:>10.2} {:>10.2}",
            lats.len(),
            mean * 1e3,
            p95 * 1e3,
            max * 1e3
        );
    }
    let total = CLIENTS * QUERIES_PER_CLIENT;
    println!(
        "\n{total} queries in {:.2}s — {:.0} queries/s across {} graphs on one pool",
        wall,
        total as f64 / wall,
        service.num_graphs()
    );

    // Observability: what the shared runtime amortized.
    println!("\ncache / workspace state after the run:");
    for name in &tenants {
        let cache = service.cache(name).unwrap();
        let (hits, misses) = cache.psi_stats();
        println!(
            "  {name:<12} psi tables: {hits} hits / {misses} misses; sweep support high-watermark: {}",
            cache.sweep_hint()
        );
    }
}
