//! Side-by-side comparison of all diffusions from the same seed — the
//! paper's conclusion scenario: "data analysts can use any of them for
//! graph cluster exploration, or even use all of them to find slightly
//! different clusters of similar size from the same seed set."
//!
//! Prints cluster size, conductance, diffusion support, work counters,
//! and wall-clock for sequential vs parallel runs of every algorithm,
//! plus the evolving-set extension.
//!
//! ```sh
//! cargo run --release --example compare_algorithms
//! ```

use plgc::cluster as lgc;
use plgc::{Pool, Seed};
use std::time::Instant;

fn main() {
    let g = plgc::graph::gen::rand_local(200_000, 5, 7);
    let seed_vertex = plgc::graph::largest_component(&g)[0];
    println!(
        "randLocal graph: {} vertices, {} edges; seed {seed_vertex}",
        g.num_vertices(),
        g.num_edges()
    );

    let seq_pool = Pool::new(1);
    let par_pool = Pool::with_default_threads();
    let seed = Seed::single(seed_vertex);
    println!("parallel pool: {} threads", par_pool.num_threads());
    println!();
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>11} {:>9} {:>10} {:>10}",
        "algorithm", "seq(ms)", "par(ms)", "|cluster|", "phi", "support", "pushes", "iters"
    );

    let nibble = lgc::NibbleParams {
        t_max: 20,
        eps: 1e-8,
        ..Default::default()
    };
    let pr = lgc::PrNibbleParams {
        alpha: 0.01,
        eps: 1e-7,
        ..Default::default()
    };
    let hk = lgc::HkprParams {
        t: 10.0,
        n_levels: 20,
        eps: 1e-7,
        ..Default::default()
    };
    let rhk = lgc::RandHkprParams {
        t: 10.0,
        max_len: 10,
        walks: 100_000,
        rng_seed: 1,
    };

    report(
        "Nibble",
        &g,
        || lgc::nibble_seq(&g, &seed, &nibble),
        || lgc::nibble_par(&par_pool, &g, &seed, &nibble),
        &par_pool,
    );
    report(
        "PR-Nibble",
        &g,
        || lgc::prnibble_seq(&g, &seed, &pr),
        || lgc::prnibble_par(&par_pool, &g, &seed, &pr),
        &par_pool,
    );
    report(
        "HK-PR",
        &g,
        || lgc::hkpr_seq(&g, &seed, &hk),
        || lgc::hkpr_par(&par_pool, &g, &seed, &hk),
        &par_pool,
    );
    report(
        "rand-HK-PR",
        &g,
        || lgc::rand_hkpr_seq(&g, &seed, &rhk),
        || lgc::rand_hkpr_par(&par_pool, &g, &seed, &rhk),
        &par_pool,
    );

    // The evolving-set extension (§5) reports its own best set.
    let es = lgc::EvolvingParams {
        max_steps: 80,
        rng_seed: 3,
        ..Default::default()
    };
    let t0 = Instant::now();
    let seq_res = lgc::evolving_set_seq(&g, &seed, &es);
    let t_seq = t0.elapsed();
    let t0 = Instant::now();
    let par_res = lgc::evolving_set_par(&par_pool, &g, &seed, &es);
    let t_par = t0.elapsed();
    println!(
        "{:<14} {:>9.1} {:>9.1} {:>9} {:>11.6} {:>9} {:>10} {:>10}",
        "evolving-set",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
        par_res.best_set.len(),
        par_res.best_conductance,
        "-",
        "-",
        par_res.steps
    );
    assert_eq!(
        seq_res.best_set, par_res.best_set,
        "ESP trajectories must agree"
    );

    let _ = seq_pool;
}

fn report(
    name: &str,
    g: &plgc::Graph,
    run_seq: impl Fn() -> lgc::Diffusion,
    run_par: impl Fn() -> lgc::Diffusion,
    par_pool: &Pool,
) {
    let t0 = Instant::now();
    let _seq_d = run_seq();
    let t_seq = t0.elapsed();
    let t0 = Instant::now();
    let par_d = run_par();
    let t_par = t0.elapsed();
    let sweep = lgc::sweep_cut_par(par_pool, g, &par_d.p);
    println!(
        "{:<14} {:>9.1} {:>9.1} {:>9} {:>11.6} {:>9} {:>10} {:>10}",
        name,
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
        sweep.best_size,
        sweep.best_conductance,
        par_d.support_size(),
        par_d.stats.pushes,
        par_d.stats.iterations
    );
}
