//! Side-by-side comparison of all diffusions from the same seed — the
//! paper's conclusion scenario: "data analysts can use any of them for
//! graph cluster exploration, or even use all of them to find slightly
//! different clusters of similar size from the same seed set."
//!
//! The sequential columns run the fresh-state reference algorithms; the
//! parallel columns all go through one warm [`Engine`], so from the
//! second row on every query runs entirely out of recycled buffers.
//!
//! Prints cluster size, conductance, diffusion support, work counters,
//! and wall-clock for sequential vs parallel runs of every algorithm,
//! plus the evolving-set extension.
//!
//! ```sh
//! cargo run --release --example compare_algorithms
//! ```

use plgc::cluster as lgc;
use plgc::{Algorithm, Engine, LocalDiffusion, Query, Seed};
use std::time::Instant;

fn main() {
    let g = plgc::graph::gen::rand_local(200_000, 5, 7);
    let seed_vertex = plgc::graph::largest_component(&g)[0];
    println!(
        "randLocal graph: {} vertices, {} edges; seed {seed_vertex}",
        g.num_vertices(),
        g.num_edges()
    );

    let engine = Engine::builder(&g).build();
    let seed = Seed::single(seed_vertex);
    println!("engine: {} threads", engine.num_threads());
    println!();
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>11} {:>9} {:>10} {:>10}",
        "algorithm", "seq(ms)", "par(ms)", "|cluster|", "phi", "support", "pushes", "iters"
    );

    let algorithms: Vec<Algorithm> = vec![
        Algorithm::Nibble(lgc::NibbleParams {
            t_max: 20,
            eps: 1e-8,
            ..Default::default()
        }),
        Algorithm::PrNibble(lgc::PrNibbleParams {
            alpha: 0.01,
            eps: 1e-7,
            ..Default::default()
        }),
        Algorithm::Hkpr(lgc::HkprParams {
            t: 10.0,
            n_levels: 20,
            eps: 1e-7,
            ..Default::default()
        }),
        Algorithm::RandHkpr(lgc::RandHkprParams {
            t: 10.0,
            max_len: 10,
            walks: 100_000,
            rng_seed: 1,
        }),
        Algorithm::Evolving(lgc::EvolvingParams {
            max_steps: 80,
            rng_seed: 3,
            ..Default::default()
        }),
    ];

    for algo in &algorithms {
        let t0 = Instant::now();
        let seq_d = algo.diffuse_seq(&g, &seed);
        let t_seq = t0.elapsed();
        let t0 = Instant::now();
        let res = engine.run(&Query::new(seed.clone(), algo.clone()));
        let t_par = t0.elapsed();
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>9} {:>11.6} {:>9} {:>10} {:>10}",
            algo.name(),
            t_seq.as_secs_f64() * 1e3,
            t_par.as_secs_f64() * 1e3,
            res.cluster.len(),
            res.conductance,
            res.diffusion.support_size(),
            res.diffusion.stats.pushes,
            res.diffusion.stats.iterations
        );
        let _ = seq_d;
    }
}
