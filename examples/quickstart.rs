//! Quickstart: find a local cluster around a seed vertex.
//!
//! Builds a small planted-cluster graph, constructs the query [`Engine`]
//! (pool + graph + recyclable workspace), and runs the full paper
//! pipeline (PR-Nibble diffusion + parallel sweep cut) — then a second
//! query over the warm engine, which reuses every scratch buffer the
//! first one allocated.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plgc::{Algorithm, CsrBackend, CsrCompressed, Engine, HkprParams, PrNibbleParams, Query, Seed};

fn main() {
    // Two 20-cliques joined by a single bridge edge: the left clique is a
    // planted cluster with conductance 1/(20·19 + 1).
    let g = plgc::graph::gen::two_cliques_bridge(20);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Build the engine once; query it as many times as you like.
    let engine = Engine::builder(&g).build();
    println!("engine: {} threads", engine.num_threads());

    let seed = Seed::single(3); // any vertex of the left clique
    let result = engine.run(&Query::new(
        seed.clone(),
        Algorithm::PrNibble(PrNibbleParams::default()),
    ));

    let mut members = result.cluster.clone();
    members.sort_unstable();
    println!("cluster ({} vertices): {:?}", members.len(), members);
    println!("conductance: {:.6}", result.conductance);
    println!(
        "diffusion touched {} vertices with {} pushes over {} iterations",
        result.diffusion.support_size(),
        result.diffusion.stats.pushes,
        result.diffusion.stats.iterations
    );
    assert_eq!(members, (0..20).collect::<Vec<u32>>());
    println!("=> recovered the planted cluster exactly");

    // A second query — different algorithm, same engine: the mass
    // arenas, frontier bitsets, and sweep scratch are recycled, and the
    // result is bit-identical to a cold run.
    let hk = engine.run(&Query::new(
        seed.clone(),
        Algorithm::Hkpr(HkprParams::default()),
    ));
    let mut members = hk.cluster.clone();
    members.sort_unstable();
    assert_eq!(members, (0..20).collect::<Vec<u32>>());
    println!("=> HK-PR over the warm engine agrees");

    // The engine is generic over the storage backend: the same queries
    // run unchanged over the byte-compressed CSR (delta + varint
    // adjacency), trading decode work for a smaller cache footprint.
    // Decoding preserves ascending neighbor order, so results match the
    // plain backend bit for bit. A workspace byte budget caps how much
    // scratch memory the engine may keep parked between queries.
    let compact = CsrCompressed::from_graph(&g);
    println!(
        "compressed adjacency: {} bytes vs {} plain",
        compact.adjacency_bytes(),
        g.adjacency_bytes()
    );
    let packed = Engine::builder(&compact)
        .workspace_budget(16 << 20) // keep at most 16 MiB of warm scratch
        .build();
    let hk2 = packed.run(&Query::new(seed, Algorithm::Hkpr(HkprParams::default())));
    assert_eq!(hk2.diffusion.p, hk.diffusion.p);
    assert_eq!(hk2.cluster, hk.cluster);
    println!("=> compressed backend is bit-identical");
}
