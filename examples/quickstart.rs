//! Quickstart: find a local cluster around a seed vertex.
//!
//! Builds a small planted-cluster graph, runs the full paper pipeline
//! (PR-Nibble diffusion + parallel sweep cut), and prints the cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plgc::{find_cluster, Algorithm, Pool, PrNibbleParams, Seed};

fn main() {
    // Two 20-cliques joined by a single bridge edge: the left clique is a
    // planted cluster with conductance 1/(20·19 + 1).
    let g = plgc::graph::gen::two_cliques_bridge(20);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let pool = Pool::with_default_threads();
    println!("pool: {} threads", pool.num_threads());

    let seed = Seed::single(3); // any vertex of the left clique
    let result = find_cluster(
        &pool,
        &g,
        &seed,
        &Algorithm::PrNibble(PrNibbleParams::default()),
    );

    let mut members = result.cluster.clone();
    members.sort_unstable();
    println!("cluster ({} vertices): {:?}", members.len(), members);
    println!("conductance: {:.6}", result.conductance);
    println!(
        "diffusion touched {} vertices with {} pushes over {} iterations",
        result.diffusion.support_size(),
        result.diffusion.stats.pushes,
        result.diffusion.stats.iterations
    );

    assert_eq!(members, (0..20).collect::<Vec<u32>>());
    println!("=> recovered the planted cluster exactly");
}
