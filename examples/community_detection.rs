//! Community detection on a planted-partition (SBM) graph.
//!
//! The paper's motivating application: find the community containing a
//! query vertex without touching the whole graph. We generate a
//! stochastic block model with known ground truth, then work in two
//! acts:
//!
//! 1. **Per-query + refinement.** Each of the four diffusions runs
//!    *untuned* from the same seed and its sweep cut is passed through
//!    the MQI max-flow stage (`Engine::improve`). Refinement never
//!    worsens conductance; where a walk over-mixes (Nibble at the
//!    paper's full `t_max = 30` floods several blocks — previously
//!    papered over here by hand-tuning `t_max` down to 15), the merged
//!    cut is simply what low conductance looks like locally, and exact
//!    recovery is the *pipeline's* job, not the parameter-tuner's.
//! 2. **Whole-graph pipeline.** `Engine::find_k_clusters` sweeps a ρ
//!    grid per seed, refines every cut, and agglomerates the embeddings
//!    — recovering all 8 planted blocks exactly, with no per-algorithm
//!    tuning at all.
//!
//! ```sh
//! cargo run --release --example community_detection
//! ```

use plgc::{
    Algorithm, Engine, EvolvingParams, HkprParams, NibbleParams, PipelineParams, PrNibbleParams,
    Query, RandHkprParams, Seed,
};
use std::collections::HashSet;

fn f1(found: &HashSet<u32>, truth: &HashSet<u32>) -> f64 {
    if found.is_empty() {
        return 0.0;
    }
    let tp = found.intersection(truth).count() as f64;
    let precision = tp / found.len() as f64;
    let recall = tp / truth.len() as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

fn main() {
    // 8 blocks of 64 vertices; dense inside (p=0.25), sparse across.
    let block_sizes = vec![64usize; 8];
    let (g, labels) = plgc::graph::gen::sbm(&block_sizes, 0.25, 0.003, 20260610);
    println!(
        "SBM: {} vertices, {} edges, {} planted blocks of 64",
        g.num_vertices(),
        g.num_edges(),
        block_sizes.len()
    );

    let engine = Engine::builder(&g).build();
    let seed_vertex = 70u32; // inside block 1
    let truth: HashSet<u32> = (0..g.num_vertices() as u32)
        .filter(|&v| labels[v as usize] == labels[seed_vertex as usize])
        .collect();
    println!(
        "seed {seed_vertex} (block {}), |truth| = {}",
        labels[seed_vertex as usize],
        truth.len()
    );
    println!();
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "algorithm", "|cluster|", "phi", "phi_mqi", "F1", "F1_mqi"
    );

    let algorithms: Vec<(&str, Algorithm)> = vec![
        (
            "Nibble",
            Algorithm::Nibble(NibbleParams {
                // The paper's full mixing: the walk floods a few blocks,
                // and their union genuinely has lower conductance than
                // one block — no tuning hides that any more.
                t_max: 30,
                eps: 1e-7,
                ..Default::default()
            }),
        ),
        (
            "PR-Nibble",
            Algorithm::PrNibble(PrNibbleParams {
                alpha: 0.05,
                eps: 1e-7,
                ..Default::default()
            }),
        ),
        (
            "HK-PR",
            Algorithm::Hkpr(HkprParams {
                t: 8.0,
                n_levels: 20,
                eps: 1e-6,
                ..Default::default()
            }),
        ),
        (
            "rand-HK-PR",
            Algorithm::RandHkpr(RandHkprParams {
                t: 8.0,
                max_len: 20,
                walks: 200_000,
                rng_seed: 1,
            }),
        ),
    ];

    for (name, algo) in algorithms {
        // One warm engine serves every algorithm's query; each sweep cut
        // then goes through the max-flow refinement stage.
        let result = engine.run(&Query::new(Seed::single(seed_vertex), algo));
        let refined = engine.improve(&result);
        assert!(
            refined.conductance <= result.conductance,
            "{name}: refinement must never worsen conductance"
        );
        let found: HashSet<u32> = result.cluster.iter().copied().collect();
        let kept: HashSet<u32> = refined.cluster.iter().copied().collect();
        println!(
            "{:<12} {:>8} {:>10.5} {:>10.5} {:>8.3} {:>8.3}",
            name,
            found.len(),
            result.conductance,
            refined.conductance,
            f1(&found, &truth),
            f1(&kept, &truth)
        );
    }
    println!();
    println!("=> phi_mqi <= phi for every algorithm (MQI is provably monotone)");

    // The evolving-set extension (§5) through the same engine surface.
    // Its trajectory "varies widely" with the random choices (the
    // paper's observation), so take the best of a small RNG ensemble —
    // sixteen more queries over the same warm engine — and refine that.
    let esp = (0..16u64)
        .map(|rng_seed| {
            engine.run(&Query::new(
                Seed::single(seed_vertex),
                Algorithm::Evolving(EvolvingParams {
                    max_steps: 120,
                    rng_seed,
                    ..Default::default()
                }),
            ))
        })
        .min_by(|a, b| a.conductance.total_cmp(&b.conductance))
        .unwrap();
    let esp_refined = engine.improve(&esp);
    println!(
        "{:<12} {:>8} {:>10.5} {:>10.5}   (best of 16 randomized runs)",
        "evolving-set",
        esp.cluster.len(),
        esp.conductance,
        esp_refined.conductance
    );

    // Act 2: the whole-graph pipeline. A ρ sweep per seed (batched over
    // the warm workspace pool), MQI refinement of every grid cut, and
    // average-linkage agglomeration of the embeddings into k groups —
    // exact recovery of the planted partition, no per-block tuning.
    println!();
    let params = PipelineParams::default();
    let kc = engine.find_k_clusters(block_sizes.len(), &params);
    println!(
        "find_k_clusters(k = {}): {} embeddings over a {}-point rho grid",
        block_sizes.len(),
        kc.embeddings.len(),
        params.nsamples
    );
    let refined_wins = kc.embeddings.iter().filter(|e| e.refined).count();
    println!(
        "  {} of {} winning cuts were strictly improved by refinement",
        refined_wins,
        kc.embeddings.len()
    );
    for (label, cluster) in kc.clusters.iter().enumerate() {
        let expected: Vec<u32> = (label as u32 * 64..(label as u32 + 1) * 64).collect();
        assert_eq!(
            *cluster, expected,
            "cluster {label} must be exactly planted block {label}"
        );
    }
    println!(
        "=> all {} planted blocks recovered exactly",
        kc.clusters.len()
    );
}
