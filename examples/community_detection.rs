//! Community detection on a planted-partition (SBM) graph.
//!
//! The paper's motivating application: find the community containing a
//! query vertex without touching the whole graph. We generate a
//! stochastic block model with known ground truth, run each of the four
//! diffusions from the same seed, and score the recovered clusters with
//! precision/recall/F1 against the planted block.
//!
//! ```sh
//! cargo run --release --example community_detection
//! ```

use plgc::{
    Algorithm, Engine, EvolvingParams, HkprParams, NibbleParams, PrNibbleParams, Query,
    RandHkprParams, Seed,
};
use std::collections::HashSet;

fn main() {
    // 8 blocks of 64 vertices; dense inside (p=0.25), sparse across.
    let block_sizes = vec![64usize; 8];
    let (g, labels) = plgc::graph::gen::sbm(&block_sizes, 0.25, 0.003, 20260610);
    println!(
        "SBM: {} vertices, {} edges, {} planted blocks of 64",
        g.num_vertices(),
        g.num_edges(),
        block_sizes.len()
    );

    let engine = Engine::builder(&g).build();
    let seed_vertex = 70u32; // inside block 1
    let truth: HashSet<u32> = (0..g.num_vertices() as u32)
        .filter(|&v| labels[v as usize] == labels[seed_vertex as usize])
        .collect();
    println!(
        "seed {seed_vertex} (block {}), |truth| = {}",
        labels[seed_vertex as usize],
        truth.len()
    );
    println!();
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "algorithm", "|cluster|", "phi", "support", "prec", "rec", "F1"
    );

    let algorithms: Vec<(&str, Algorithm)> = vec![
        (
            "Nibble",
            Algorithm::Nibble(NibbleParams {
                // 30 iterations over-mixes on this SBM (the walk floods
                // three blocks before truncation bites); 15 recovers the
                // planted block exactly.
                t_max: 15,
                eps: 1e-7,
                ..Default::default()
            }),
        ),
        (
            "PR-Nibble",
            Algorithm::PrNibble(PrNibbleParams {
                alpha: 0.05,
                eps: 1e-7,
                ..Default::default()
            }),
        ),
        (
            "HK-PR",
            Algorithm::Hkpr(HkprParams {
                t: 8.0,
                n_levels: 20,
                eps: 1e-6,
                ..Default::default()
            }),
        ),
        (
            "rand-HK-PR",
            Algorithm::RandHkpr(RandHkprParams {
                t: 8.0,
                max_len: 20,
                walks: 200_000,
                rng_seed: 1,
            }),
        ),
    ];

    for (name, algo) in algorithms {
        // One warm engine serves every algorithm's query.
        let result = engine.run(&Query::new(Seed::single(seed_vertex), algo));
        let found: HashSet<u32> = result.cluster.iter().copied().collect();
        let tp = found.intersection(&truth).count() as f64;
        let precision = if found.is_empty() {
            0.0
        } else {
            tp / found.len() as f64
        };
        let recall = tp / truth.len() as f64;
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        println!(
            "{:<12} {:>8} {:>10.5} {:>10} {:>8.3} {:>8.3} {:>8.3}",
            name,
            found.len(),
            result.conductance,
            result.diffusion.support_size(),
            precision,
            recall,
            f1
        );
        assert!(
            f1 > 0.8,
            "{name}: expected high-quality recovery, F1 = {f1}"
        );
    }
    println!();
    println!("=> all four diffusions recover the planted community (F1 > 0.8)");

    // The evolving-set extension (§5) through the same engine surface.
    // Its trajectory "varies widely" with the random choices (the
    // paper's observation), so take the best of a small RNG ensemble —
    // sixteen more queries over the same warm engine.
    let esp = (0..16u64)
        .map(|rng_seed| {
            engine.run(&Query::new(
                Seed::single(seed_vertex),
                Algorithm::Evolving(EvolvingParams {
                    max_steps: 120,
                    rng_seed,
                    ..Default::default()
                }),
            ))
        })
        .min_by(|a, b| a.conductance.total_cmp(&b.conductance))
        .unwrap();
    println!(
        "{:<12} {:>8} {:>10.5}   (best of 16 randomized runs)",
        "evolving-set",
        esp.cluster.len(),
        esp.conductance
    );
}
