//! Parallel Local Graph Clustering — umbrella crate.
//!
//! A Rust reproduction of *"Parallel Local Graph Clustering"* (Shun,
//! Roosta-Khorasani, Fountoulakis, Mahoney; VLDB 2016), grown into a
//! query-serving system. The paper's five local diffusions — Nibble,
//! PR-Nibble, deterministic and randomized heat-kernel PageRank, and the
//! evolving-set process — are one family over the same frontier
//! framework, and the [`Engine`] serves them all through one handle.
//!
//! # Quickstart
//!
//! Build an [`Engine`] once per graph, then hit it with queries; scratch
//! state (mass arenas, frontier bitsets, sweep tables) is recycled from
//! query to query instead of reallocated:
//!
//! ```
//! use plgc::{Algorithm, Engine, PrNibbleParams, Query, Seed};
//!
//! let g = plgc::graph::gen::two_cliques_bridge(16);
//! let mut engine = Engine::builder(&g).threads(2).build();
//!
//! let result = engine.run(&Query::new(
//!     Seed::single(0),
//!     Algorithm::PrNibble(PrNibbleParams::default()),
//! ));
//! assert_eq!(result.cluster.len(), 16);
//! assert!(result.conductance < 0.01);
//!
//! // Same engine, different algorithm — buffers are reused.
//! use plgc::cluster::HkprParams;
//! let hk = engine.run(&Query::new(
//!     Seed::single(0),
//!     Algorithm::Hkpr(HkprParams::default()),
//! ));
//! assert_eq!(hk.cluster.len(), 16);
//! ```
//!
//! Every algorithm implements the [`LocalDiffusion`] trait (seed →
//! params → diffusion over a shared [`Workspace`]), engine results are
//! bit-identical to the free-function pipeline, and
//! [`Engine::run_batch`] fans any mix of queries across the pool with
//! per-worker workspaces (deterministic, thread-count independent).
//!
//! # Migrating from the free functions
//!
//! The pre-`Engine` free functions remain available as thin wrappers
//! (each runs the identical code path over a fresh, throwaway
//! workspace):
//!
//! | Old call | Engine form |
//! |---|---|
//! | `find_cluster(&pool, &g, &seed, &algo)` | `engine.run(&Query::new(seed, algo))` |
//! | `prnibble_par(&pool, &g, &seed, &p)` | `engine.diffuse(&seed, &Algorithm::PrNibble(p))` |
//! | `nibble_par` / `hkpr_par` / `rand_hkpr_par` | `engine.diffuse(&seed, &Algorithm::…(p))` |
//! | `evolving_set_par(&pool, &g, &seed, &p)` | `engine.run(&Query::new(seed, Algorithm::Evolving(p)))` |
//! | `batch_prnibble(&pool, &g, &queries)` | `engine.run_batch(&queries)` (any algorithm mix) |
//! | `ncp_prnibble(&pool, &g, &params)` | `engine.ncp(&params)` |
//! | `Pool::new(t)` + free functions | `Engine::builder(&g).threads(t).build()` |
//!
//! `Query` changed shape with the redesign: it now carries an
//! [`Algorithm`] (`Query { seed, algo }`) instead of PR-Nibble
//! parameters, which is what lets one batch mix all five diffusions.
//!
//! # Workspace layout
//!
//! * [`parallel`] — thread pool and work-depth primitives (prefix sums,
//!   filter, parallel sorts, atomic `f64`, bitsets).
//! * [`sparse`] — sequential and phase-concurrent sparse sets, plus the
//!   adaptive dense/sparse `MassMap`.
//! * [`graph`] — CSR graphs, generators, conductance utilities, I/O.
//! * [`ligra`] — `vertexSubset` / `vertexMap` / direction-optimizing
//!   `edgeMap` frontier framework.
//! * [`cluster`] — the paper's algorithms behind the [`Engine`]: Nibble,
//!   PR-Nibble, HK-PR, rand-HK-PR, evolving sets, sweep cuts, and NCP
//!   plots.

pub use lgc_core as cluster;
pub use lgc_graph as graph;
pub use lgc_ligra as ligra;
pub use lgc_parallel as parallel;
pub use lgc_sparse as sparse;

pub use lgc_core::{
    batch_prnibble, evolving_set_par, evolving_set_seq, find_cluster, hkpr_par, hkpr_seq,
    ncp_prnibble, nibble_par, nibble_seq, nibble_with_target_par, prnibble_par, prnibble_seq,
    rand_hkpr_par, rand_hkpr_seq, run_batch, sweep_cut_par, sweep_cut_seq, Algorithm,
    ClusterResult, Diffusion, Direction, DirectionMode, DirectionParams, Engine, EngineBuilder,
    EvolvingParams, HkprParams, LocalDiffusion, NcpParams, NibbleParams, PrNibbleParams, PushRule,
    Query, RandHkprParams, Seed, SweepCut, Workspace,
};
pub use lgc_graph::{Graph, GraphBuilder};
pub use lgc_parallel::Pool;
