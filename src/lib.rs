//! Parallel Local Graph Clustering — umbrella crate.
//!
//! A Rust reproduction of *"Parallel Local Graph Clustering"* (Shun,
//! Roosta-Khorasani, Fountoulakis, Mahoney; VLDB 2016). This crate
//! re-exports the whole workspace under one roof:
//!
//! * [`parallel`] — thread pool and work-depth primitives (prefix sums,
//!   filter, parallel sorts, atomic `f64`).
//! * [`sparse`] — sequential and phase-concurrent sparse sets.
//! * [`graph`] — CSR graphs, generators, conductance utilities, I/O.
//! * [`ligra`] — `vertexSubset` / `vertexMap` / `edgeMap` frontier
//!   framework.
//! * [`cluster`] — the paper's algorithms: Nibble, PR-Nibble, HK-PR,
//!   rand-HK-PR, evolving sets, sweep cuts, and NCP plots.
//!
//! The most common entry points are also re-exported at the top level:
//!
//! ```
//! use plgc::{find_cluster, Algorithm, Pool, PrNibbleParams, Seed};
//!
//! let g = plgc::graph::gen::two_cliques_bridge(16);
//! let pool = Pool::with_default_threads();
//! let result = find_cluster(
//!     &pool,
//!     &g,
//!     &Seed::single(0),
//!     &Algorithm::PrNibble(PrNibbleParams::default()),
//! );
//! assert_eq!(result.cluster.len(), 16);
//! assert!(result.conductance < 0.01);
//! ```

pub use lgc_core as cluster;
pub use lgc_graph as graph;
pub use lgc_ligra as ligra;
pub use lgc_parallel as parallel;
pub use lgc_sparse as sparse;

pub use lgc_core::{
    batch_prnibble, evolving_set_par, evolving_set_seq, find_cluster, hkpr_par, hkpr_seq,
    ncp_prnibble, nibble_par, nibble_seq, nibble_with_target_par, prnibble_par, prnibble_seq,
    rand_hkpr_par, rand_hkpr_seq, sweep_cut_par, sweep_cut_seq, Algorithm, ClusterResult,
    Diffusion, Direction, DirectionMode, DirectionParams, EvolvingParams, HkprParams, NcpParams,
    NibbleParams, PrNibbleParams, PushRule, Query, RandHkprParams, Seed, SweepCut,
};
pub use lgc_graph::{Graph, GraphBuilder};
pub use lgc_parallel::Pool;
