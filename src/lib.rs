//! Parallel Local Graph Clustering — umbrella crate.
//!
//! A Rust reproduction of *"Parallel Local Graph Clustering"* (Shun,
//! Roosta-Khorasani, Fountoulakis, Mahoney; VLDB 2016), grown into a
//! query-serving system. The paper's five local diffusions — Nibble,
//! PR-Nibble, deterministic and randomized heat-kernel PageRank, and the
//! evolving-set process — are one family over the same frontier
//! framework, and one process serves them all, against any number of
//! resident graphs, from any number of threads.
//!
//! # Quickstart: the [`Service`]
//!
//! Register your graphs into a [`Service`] over one shared thread
//! [`Pool`]; query through `&self` handles from as many OS threads as
//! you like. Each graph keeps a checkout pool of warm workspaces (mass
//! arenas, frontier bitsets, sweep tables) and a [`GraphCache`] of
//! seed-independent state (HK-PR ψ tables, degree vector, statistics):
//!
//! ```
//! use plgc::{Algorithm, PrNibbleParams, Query, Seed, Service};
//! use plgc::Pool;
//!
//! let service = Service::builder()
//!     .pool(Pool::shared(2))
//!     .add_graph("social", plgc::graph::gen::two_cliques_bridge(16))
//!     .add_graph("mesh", plgc::graph::gen::grid_3d(6, 6, 4))
//!     .build();
//!
//! // Handles are Copy and `&self`-querying — grab one per request.
//! let engine = service.engine("social").unwrap();
//! let result = engine.run(&Query::new(
//!     Seed::single(0),
//!     Algorithm::PrNibble(PrNibbleParams::default()),
//! ));
//! assert_eq!(result.cluster.len(), 16);
//! assert!(result.conductance < 0.01);
//!
//! // Concurrent clients just query; scratch is checked out per query.
//! std::thread::scope(|s| {
//!     for name in ["social", "mesh"] {
//!         let service = &service;
//!         s.spawn(move || {
//!             let engine = service.engine(name).unwrap();
//!             engine.run(&Query::new(
//!                 Seed::single(1),
//!                 Algorithm::PrNibble(PrNibbleParams::default()),
//!             ))
//!         });
//!     }
//! });
//! ```
//!
//! # Single graph: the [`Engine`]
//!
//! One graph, same machinery, no registry — an [`Engine`] borrows the
//! graph and owns (or [shares](EngineBuilder::shared_pool)) its pool.
//! All query methods take `&self`:
//!
//! ```
//! use plgc::{Algorithm, Engine, HkprParams, Query, Seed};
//!
//! let g = plgc::graph::gen::two_cliques_bridge(16);
//! let engine = Engine::builder(&g).threads(2).build();
//! let hk = engine.run(&Query::new(
//!     Seed::single(0),
//!     Algorithm::Hkpr(HkprParams::default()),
//! ));
//! assert_eq!(hk.cluster.len(), 16);
//! ```
//!
//! Every algorithm implements the [`LocalDiffusion`] trait (seed →
//! params → diffusion over a shared [`Workspace`]), engine and service
//! results are bit-identical to the free-function pipeline — warm
//! workspace checkouts and cache hits are observationally invisible, a
//! contract enforced from multiple OS threads by
//! `tests/service_properties.rs` — and [`Engine::run_batch`] fans any
//! mix of queries across the pool with per-worker workspaces that stay
//! warm across calls (deterministic, thread-count independent).
//!
//! # Migrating from the PR 3 `Engine` and the free functions
//!
//! Queries became `&self` (callers no longer need `mut` engines or a
//! mutex around one), pools became shareable, and multi-graph hosting
//! moved into [`Service`]:
//!
//! | Old call | Current form |
//! |---|---|
//! | `engine.run(&q)` with `let mut engine` | same, `mut` no longer needed (`&self`) |
//! | one mutex-guarded engine per graph | `Service` + `svc.engine("name")?` handles |
//! | one `Pool` spawned per engine | `Pool::shared(t)` + `.shared_pool(..)` / `Service::builder().pool(..)` |
//! | `find_cluster(&pool, &g, &seed, &algo)` | `engine.run(&Query::new(seed, algo))` |
//! | `prnibble_par(&pool, &g, &seed, &p)` | `engine.diffuse(&seed, &Algorithm::PrNibble(p))` |
//! | `nibble_par` / `hkpr_par` / `rand_hkpr_par` | `engine.diffuse(&seed, &Algorithm::…(p))` |
//! | `evolving_set_par(&pool, &g, &seed, &p)` | `engine.run(&Query::new(seed, Algorithm::Evolving(p)))` |
//! | `ncp_prnibble(&pool, &g, &params)` | `engine.ncp(&params)` |
//!
//! The free functions remain available as thin wrappers (each runs the
//! identical code path over a fresh, throwaway workspace).
//!
//! # Storage backends and memory budgets
//!
//! Graph storage is pluggable behind the [`CsrBackend`] trait: plain CSR
//! ([`Graph`], one `u32` per directed edge) or byte-compressed CSR
//! ([`CsrCompressed`], Ligra+-style delta + varint coding decoded inside
//! the traversal kernels — typically 2–3× fewer adjacency bytes on
//! power-law graphs). Every engine and service query is bit-identical
//! across backends; both decode neighbors in ascending order, so even
//! the dense-pull traversals stay deterministic. Per-graph scratch is
//! bounded in bytes, not workspace counts: each graph's checkout pool
//! has a byte budget (default 4× the graph, clamped to
//! `[32 MiB, 1 GiB]`), and `try_run` surfaces budget exhaustion as a
//! typed [`WorkspaceBudgetExceeded`] back-pressure error while plain
//! `run` degrades to transient scratch:
//!
//! ```
//! use plgc::{Algorithm, CsrCompressed, PrNibbleParams, Query, Seed, Service};
//!
//! let g = plgc::graph::gen::two_cliques_bridge(16);
//! let compact = CsrCompressed::from_graph(&g);
//! let mut service = Service::builder()
//!     .threads(2)
//!     .add_graph("plain", g)               // plain CSR backend
//!     .add_graph("compact", compact)       // byte-compressed backend
//!     .build();
//! // Explicit workspace byte budget for a memory-tight tenant:
//! service.add_graph_with_budget("tiny", plgc::graph::gen::cycle(64), 8 << 20);
//! let q = Query::new(Seed::single(0), Algorithm::PrNibble(PrNibbleParams::default()));
//! let a = service.engine("plain").unwrap().run(&q);
//! let b = service.engine("compact").unwrap().run(&q);
//! assert_eq!(a.cluster, b.cluster); // bit-identical across backends
//! assert!(service.engine("tiny").unwrap().try_run(&q).is_ok());
//! ```
//!
//! # Workspace layout
//!
//! * [`parallel`] — thread pool and work-depth primitives (prefix sums,
//!   filter, parallel sorts, atomic `f64`, bitsets).
//! * [`sparse`] — sequential and phase-concurrent sparse sets, plus the
//!   adaptive dense/sparse `MassMap`.
//! * [`graph`] — CSR graphs, generators, conductance utilities, I/O.
//! * [`ligra`] — `vertexSubset` / `vertexMap` / direction-optimizing
//!   `edgeMap` frontier framework.
//! * [`cluster`] — the paper's algorithms behind the [`Engine`] and
//!   [`Service`]: Nibble, PR-Nibble, HK-PR, rand-HK-PR, evolving sets,
//!   sweep cuts, and NCP plots.

pub use lgc_core as cluster;
pub use lgc_graph as graph;
pub use lgc_ligra as ligra;
pub use lgc_parallel as parallel;
pub use lgc_sparse as sparse;

pub use lgc_core::{
    evolving_set_par, evolving_set_seq, find_cluster, hkpr_par, hkpr_seq, ncp_prnibble, nibble_par,
    nibble_seq, nibble_with_target_par, prnibble_par, prnibble_seq, rand_hkpr_par, rand_hkpr_seq,
    run_batch, sweep_cut_par, sweep_cut_seq, Algorithm, ClusterResult, Diffusion, Direction,
    DirectionMode, DirectionParams, Engine, EngineBuilder, EngineHandle, EvolvingParams,
    GraphCache, GraphStore, GraphSummary, HkprParams, LocalDiffusion, NcpParams, NibbleParams,
    PrNibbleParams, PushRule, Query, RandHkprParams, Seed, Service, ServiceBuilder, ServiceEngine,
    SweepCut, Workspace, WorkspaceBudgetExceeded,
};
pub use lgc_graph::{CsrBackend, CsrCompressed, CsrPlain, Graph, GraphBuilder};
pub use lgc_parallel::Pool;
