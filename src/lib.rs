//! Parallel Local Graph Clustering — umbrella crate.
//!
//! A Rust reproduction of *"Parallel Local Graph Clustering"* (Shun,
//! Roosta-Khorasani, Fountoulakis, Mahoney; VLDB 2016), grown into a
//! query-serving system. The paper's five local diffusions — Nibble,
//! PR-Nibble, deterministic and randomized heat-kernel PageRank, and the
//! evolving-set process — are one family over the same frontier
//! framework, and one process serves them all, against any number of
//! resident graphs, from any number of threads.
//!
//! # Quickstart: the [`Service`]
//!
//! Register your graphs into a [`Service`] over one shared thread
//! [`Pool`]; query through `&self` handles from as many OS threads as
//! you like. Each graph keeps a checkout pool of warm workspaces (mass
//! arenas, frontier bitsets, sweep tables) and a [`GraphCache`] of
//! seed-independent state (HK-PR ψ tables, degree vector, statistics):
//!
//! ```
//! use plgc::{Algorithm, PrNibbleParams, Query, Seed, Service};
//! use plgc::Pool;
//!
//! let service = Service::builder()
//!     .pool(Pool::shared(2))
//!     .add_graph("social", plgc::graph::gen::two_cliques_bridge(16))
//!     .add_graph("mesh", plgc::graph::gen::grid_3d(6, 6, 4))
//!     .build();
//!
//! // Handles are Copy and `&self`-querying — grab one per request.
//! let engine = service.engine("social").unwrap();
//! let result = engine.run(&Query::new(
//!     Seed::single(0),
//!     Algorithm::PrNibble(PrNibbleParams::default()),
//! ));
//! assert_eq!(result.cluster.len(), 16);
//! assert!(result.conductance < 0.01);
//!
//! // Concurrent clients just query; scratch is checked out per query.
//! std::thread::scope(|s| {
//!     for name in ["social", "mesh"] {
//!         let service = &service;
//!         s.spawn(move || {
//!             let engine = service.engine(name).unwrap();
//!             engine.run(&Query::new(
//!                 Seed::single(1),
//!                 Algorithm::PrNibble(PrNibbleParams::default()),
//!             ))
//!         });
//!     }
//! });
//! ```
//!
//! # Single graph: the [`Engine`]
//!
//! One graph, same machinery, no registry — an [`Engine`] borrows the
//! graph and owns (or [shares](EngineBuilder::shared_pool)) its pool.
//! All query methods take `&self`:
//!
//! ```
//! use plgc::{Algorithm, Engine, HkprParams, Query, Seed};
//!
//! let g = plgc::graph::gen::two_cliques_bridge(16);
//! let engine = Engine::builder(&g).threads(2).build();
//! let hk = engine.run(&Query::new(
//!     Seed::single(0),
//!     Algorithm::Hkpr(HkprParams::default()),
//! ));
//! assert_eq!(hk.cluster.len(), 16);
//! ```
//!
//! Every algorithm implements the [`LocalDiffusion`] trait (seed →
//! params → diffusion over a shared [`Workspace`]), engine and service
//! results are bit-identical to the free-function pipeline — warm
//! workspace checkouts and cache hits are observationally invisible, a
//! contract enforced from multiple OS threads by
//! `tests/service_properties.rs` — and [`Engine::run_batch`] fans any
//! mix of queries across the pool with per-worker workspaces that stay
//! warm across calls (deterministic, thread-count independent).
//!
//! # Migrating from the PR 3 `Engine` and the free functions
//!
//! Queries became `&self` (callers no longer need `mut` engines or a
//! mutex around one), pools became shareable, and multi-graph hosting
//! moved into [`Service`]:
//!
//! | Old call | Current form |
//! |---|---|
//! | `engine.run(&q)` with `let mut engine` | same, `mut` no longer needed (`&self`) |
//! | one mutex-guarded engine per graph | `Service` + `svc.engine("name")?` handles |
//! | one `Pool` spawned per engine | `Pool::shared(t)` + `.shared_pool(..)` / `Service::builder().pool(..)` |
//! | `find_cluster(&pool, &g, &seed, &algo)` | `engine.run(&Query::new(seed, algo))` |
//! | `prnibble_par(&pool, &g, &seed, &p)` | `engine.diffuse(&seed, &Algorithm::PrNibble(p))` |
//! | `nibble_par` / `hkpr_par` / `rand_hkpr_par` | `engine.diffuse(&seed, &Algorithm::…(p))` |
//! | `evolving_set_par(&pool, &g, &seed, &p)` | `engine.run(&Query::new(seed, Algorithm::Evolving(p)))` |
//! | `ncp_prnibble(&pool, &g, &params)` | `engine.ncp(&params)` |
//!
//! The free functions remain available as thin wrappers (each runs the
//! identical code path over a fresh, throwaway workspace).
//!
//! # Storage backends and memory budgets
//!
//! Graph storage is pluggable behind the [`CsrBackend`] trait: plain CSR
//! ([`Graph`], one `u32` per directed edge) or byte-compressed CSR
//! ([`CsrCompressed`], Ligra+-style delta + varint coding decoded inside
//! the traversal kernels — typically 2–3× fewer adjacency bytes on
//! power-law graphs). Every engine and service query is bit-identical
//! across backends; both decode neighbors in ascending order, so even
//! the dense-pull traversals stay deterministic. Per-graph scratch is
//! bounded in bytes, not workspace counts: each graph's checkout pool
//! has a byte budget (default 4× the graph, clamped to
//! `[32 MiB, 1 GiB]`), and `try_run` surfaces budget exhaustion as a
//! typed [`WorkspaceBudgetExceeded`] back-pressure error while plain
//! `run` degrades to transient scratch:
//!
//! ```
//! use plgc::{Algorithm, CsrCompressed, PrNibbleParams, Query, Seed, Service};
//!
//! let g = plgc::graph::gen::two_cliques_bridge(16);
//! let compact = CsrCompressed::from_graph(&g);
//! let mut service = Service::builder()
//!     .threads(2)
//!     .add_graph("plain", g)               // plain CSR backend
//!     .add_graph("compact", compact)       // byte-compressed backend
//!     .build();
//! // Explicit workspace byte budget for a memory-tight tenant:
//! service.add_graph_with_budget("tiny", plgc::graph::gen::cycle(64), 8 << 20);
//! let q = Query::new(Seed::single(0), Algorithm::PrNibble(PrNibbleParams::default()));
//! let a = service.engine("plain").unwrap().run(&q);
//! let b = service.engine("compact").unwrap().run(&q);
//! assert_eq!(a.cluster, b.cluster); // bit-identical across backends
//! assert!(service.engine("tiny").unwrap().try_run(&q).is_ok());
//! ```
//!
//! # Robustness: deadlines, cancellation, budgets, admission control
//!
//! A server cannot afford one runaway query: a pathological `(seed, ε)`
//! pair can push a "local" diffusion into touching most of a billion-edge
//! graph. Every fallible entry point ([`Engine::try_run`],
//! [`Engine::try_run_batch`], and their [`Service`] forms) is therefore
//! *governed*:
//!
//! * **Budgets.** A [`QueryBudget`] bounds a query by wall-clock
//!   deadline, by deterministic work counters (pushed mass updates,
//!   traversed edges), or until a shared [`CancelToken`] flips. Budgets
//!   ride on the [`Query`] and merge field-wise over the engine's
//!   per-graph default ([`EngineBuilder::default_budget`],
//!   [`EngineLimits`]). Checks are cooperative — one atomic load and a
//!   coarse clock read per frontier iteration, never per edge — so the
//!   hot kernels are untouched and *completed* runs are bit-identical
//!   to unbudgeted ones.
//! * **Typed trips with partial results.** A tripped query returns
//!   [`QueryError`] carrying a [`PartialResult`]: the mass settled up to
//!   the last completed iteration, a best-so-far sweep cut over it, and
//!   the work counters at the stop — never a panic, and the workspace
//!   checkout is recycled as if the query had completed. Work-budget
//!   trips are deterministic (the counters are bit-identical across
//!   thread counts and storage backends); deadline and cancellation
//!   trips land wherever the clock does.
//! * **Admission control.** Per-graph in-flight caps
//!   ([`EngineBuilder::max_in_flight`]) shed excess arrivals with
//!   [`QueryError::Overloaded`] and a retry-after hint (the graph's mean
//!   completed-query latency); seeds are validated against the graph
//!   before any work ([`QueryError::InvalidSeed`]); workspace byte
//!   budgets refuse checkouts that would overshoot
//!   ([`QueryError::WorkspaceBudgetExceeded`]). Transient refusals
//!   answer [`QueryError::is_retryable`].
//! * **Counters.** Each graph keeps [`LifecycleSnapshot`] robustness
//!   counters (admitted / completed / shed / tripped / in-flight) next
//!   to its [`GraphCache`] stats — [`Engine::lifecycle_stats`],
//!   [`Service::lifecycle`].
//!
//! ```
//! use plgc::{Algorithm, Engine, PrNibbleParams, Query, QueryBudget, QueryError, Seed};
//! use std::time::Duration;
//!
//! let g = plgc::graph::gen::rand_local(500, 5, 3);
//! let engine = Engine::builder(&g)
//!     .threads(2)
//!     .default_budget(QueryBudget::unlimited().with_deadline(Duration::from_secs(30)))
//!     .max_in_flight(64)
//!     .build();
//! // A tight work cap trips deterministically, with the partial result:
//! let q = Query::new(
//!     Seed::single(7),
//!     Algorithm::PrNibble(PrNibbleParams { eps: 1e-7, ..Default::default() }),
//! )
//! .with_budget(QueryBudget::unlimited().with_max_edges_traversed(10));
//! match engine.try_run(&q) {
//!     Err(QueryError::WorkBudgetExceeded(partial)) => {
//!         assert!(partial.stats.edges_traversed >= 10);
//!         assert!(partial.cluster().is_some(), "best-so-far cut");
//!     }
//!     other => panic!("expected a work-budget trip, got {other:?}"),
//! }
//! // The engine is fully recovered: the same query, unbudgeted, completes.
//! assert!(engine.try_run(&q.clone().with_budget(QueryBudget::unlimited())).is_ok());
//! assert_eq!(engine.lifecycle_stats().work_tripped, 1);
//! ```
//!
//! The infallible [`Engine::run`] keeps its run-to-completion semantics
//! — budgets and admission control apply only to the `try_` entry
//! points. The `fault-inject` feature adds a deterministic fault plan to
//! [`QueryBudget`] for harness use (trip exactly at the k-th checkpoint);
//! `tests/fault_properties.rs` drives it across all five algorithms,
//! both CSR backends, and 1–4 threads to prove no-panic, full pool
//! recovery, and post-fault bitwise determinism.
//!
//! # Refinement & pipelines: max-flow `improve` and `find_k_clusters`
//!
//! The diffusions *find* low-conductance cuts; they never *improve*
//! them. [`Engine::improve`] adds the flow stage the local-clustering
//! literature pairs with every spectral method: an MQI-style iterated
//! max-flow refinement (hand-rolled Dinic in the [`flow`] crate) that
//! takes any sweep cut and returns a subset with conductance **≤ the
//! input's** — provably and deterministically, with [`QueryBudget`]
//! checkpoints ticking inside the flow solver's phase loop
//! ([`Engine::try_improve`]; a trip returns the unrefined cut as a typed
//! [`PartialResult`]). On top of refinement sit the first whole-graph
//! pipelines: [`Engine::compute_embedding`] sweeps a geomspace ρ grid of
//! PR-Nibble queries per seed through [`Engine::run_batch`] (warm
//! workspaces, shared [`GraphCache`]), refines each cut, and keeps the
//! minimum-conductance envelope — recording the actually-achieved grid
//! in [`RhoGrid`] so budget truncation is visible, never silent — and
//! [`Engine::find_k_clusters`] agglomerates every vertex's embedding
//! into `k` groups by pairwise distance (see
//! `examples/community_detection.rs` for exact planted-partition
//! recovery on an SBM):
//!
//! ```
//! use plgc::{Algorithm, Engine, PrNibbleParams, Query, Seed};
//!
//! // Two 12-cliques joined by one bridge edge {0, 12}.
//! let g = plgc::graph::gen::two_cliques_bridge(12);
//! let engine = Engine::builder(&g).threads(2).build();
//!
//! // Diffuse → sweep: PR-Nibble's sweep cut already nails this planted
//! // cut, and refinement certifies it as flow-optimal (a fixed point).
//! let q = Query::new(Seed::single(5), Algorithm::PrNibble(PrNibbleParams::default()));
//! let result = engine.run(&q);
//! let mut cluster = result.cluster.clone(); // sweep order → sorted
//! cluster.sort_unstable();
//! assert_eq!(cluster, (0..12).collect::<Vec<u32>>());
//! assert_eq!(engine.improve(&result).cluster, cluster);
//!
//! // A sloppy analyst cut — nine clique-A vertices plus three
//! // intruders from across the bridge — is what MQI repairs: improve
//! // strips the intruders and the conductance strictly drops.
//! let sloppy: Vec<u32> = (3..15).collect();
//! let refined = engine.improve_set(&sloppy);
//! assert_eq!(refined.cluster, (3..12).collect::<Vec<u32>>());
//! assert!(refined.conductance < g.conductance(&sloppy));
//! assert_eq!(engine.lifecycle_stats().refine_improved, 1);
//! ```
//!
//! Refinement counters (`refined`, `refine_improved`) ride the same
//! [`LifecycleSnapshot`] as the robustness counters and render on the
//! server's METRICS page.
//!
//! # Serving over the network: `lgc-server`
//!
//! The [`server`] crate puts a real TCP front door on a [`Service`]:
//! the `lgc-server` binary speaks a length-prefixed binary protocol
//! (spec: `crates/server/PROTOCOL.md`) built on `std::net` only. Each
//! connection gets a reader and a writer thread; queries funnel through
//! a bounded **two-class priority scheduler** (interactive dispatches
//! ahead of bulk, bulk inherits a server work budget so scans keep
//! yielding through the checkpoint machinery), and three explicit
//! backpressure gates shed overload with typed, retryable errors
//! carrying `retry_after` hints: the per-connection in-flight cap, the
//! per-class queue bound, and the engine's own admission control. A
//! `METRICS` request (or `lgc-server --metrics-once`) renders
//! Prometheus-style text: per-tenant × per-class latency quantiles,
//! queue depths, [`GraphCache`] hit rates, and [`LifecycleSnapshot`]
//! counters. Responses are **bit-identical** to direct [`Engine`] runs
//! of the same queries — `f64`s travel as raw bits — a contract the
//! loopback suite (`crates/server/tests/loopback.rs`) enforces over
//! real sockets with concurrent mixed-tenant clients:
//!
//! ```
//! use plgc::server::{client::Client, Priority, Server, ServerConfig};
//! use plgc::{Algorithm, PrNibbleParams, Query, Seed, Service};
//! use std::sync::Arc;
//!
//! let mut svc = Service::builder().threads(1).build();
//! svc.add_graph("social", plgc::graph::gen::two_cliques_bridge(16));
//! let server = Server::bind(Arc::new(svc), "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! assert_eq!(client.list().unwrap(), vec!["social"]);
//! let result = client
//!     .query("social", Priority::Interactive, &Query::new(
//!         Seed::single(0),
//!         Algorithm::PrNibble(PrNibbleParams::default()),
//!     ))
//!     .unwrap()   // transport ok
//!     .unwrap();  // server answered with a result, not a typed error
//! assert_eq!(result.cluster.len(), 16);
//! server.shutdown();
//! ```
//!
//! `examples/server.rs` remains the in-process, no-sockets simulation
//! of the same serving loop; `bench_server` (in `crates/bench`) records
//! sustained qps and p50/p95/p99 per tenant class — including the
//! interactive-vs-bulk A/B that measures what the priority scheduler
//! buys — to `BENCH_server.json`.
//!
//! # Workspace layout
//!
//! * [`parallel`] — thread pool and work-depth primitives (prefix sums,
//!   filter, parallel sorts, atomic `f64`, bitsets).
//! * [`sparse`] — sequential and phase-concurrent sparse sets, plus the
//!   adaptive dense/sparse `MassMap`.
//! * [`graph`] — CSR graphs, generators, conductance utilities, I/O.
//! * [`ligra`] — `vertexSubset` / `vertexMap` / direction-optimizing
//!   `edgeMap` frontier framework.
//! * [`flow`] — hand-rolled Dinic max-flow and the MQI-style
//!   `improve` refinement stage.
//! * [`cluster`] — the paper's algorithms behind the [`Engine`] and
//!   [`Service`]: Nibble, PR-Nibble, HK-PR, rand-HK-PR, evolving sets,
//!   sweep cuts, and NCP plots.
//! * [`server`] — the TCP front door: frame codec, wire types, the
//!   two-class scheduler, per-tenant metrics, the blocking client, and
//!   the `lgc-server` binary.
//!
//! # Correctness tooling
//!
//! The guarantees above — bitwise-deterministic results, bounded
//! interruptible queries, a serving layer that degrades instead of
//! dying — are invariants of *this* codebase, not of Rust, so the
//! workspace audits them mechanically:
//!
//! * **`lgc-lint`** (`cargo run -p lgc-lint`, a required CI gate) is a
//!   dependency-free source auditor with five rules: every `unsafe`
//!   site states its soundness invariant (`unsafe-safety`); atomics
//!   live only in files with a documented ordering protocol and
//!   `SeqCst` is banned by default (`atomic-ordering`); no hash-order
//!   iteration or wall-clock reads feed query results (`determinism`);
//!   every diffusion frontier loop carries a `Checkpoint` tick
//!   (`checkpoint-tick`); and `lgc-server` non-test code never panics
//!   (`no-panic-in-server`). Reviewed exceptions use
//!   `// lgc-lint: allow(<rule>) -- <reason>` pragmas — the reason is
//!   mandatory. See `crates/lint/README.md` for the rule catalog.
//! * **`clippy::undocumented_unsafe_blocks`** is enabled
//!   workspace-wide (denied in CI), double-covering the SAFETY rule at
//!   the compiler level; crates that need no `unsafe` — the server,
//!   flow, bench, and the offline shims — pin that down with
//!   `#![forbid(unsafe_code)]`.
//! * **Miri** (nightly CI job) runs the compressed-CSR decoder and
//!   backend-equivalence suites plus the sparse-set model tests under
//!   the interpreter, checking the unaligned-read / `STREAM_PAD`
//!   invariants dynamically.
//! * **ThreadSanitizer** (nightly CI job, `-Zsanitizer=thread`) runs
//!   the `lgc-parallel` and `lgc-sparse` suites — the pool's job
//!   protocol, `UnsafeSlice` disjoint writes, and the phase-concurrent
//!   accumulators — under a data-race detector.

pub use lgc_core as cluster;
pub use lgc_flow as flow;
pub use lgc_graph as graph;
pub use lgc_ligra as ligra;
pub use lgc_parallel as parallel;
pub use lgc_server as server;
pub use lgc_sparse as sparse;

#[cfg(feature = "fault-inject")]
pub use lgc_core::FaultPlan;
pub use lgc_core::{
    evolving_set_par, evolving_set_seq, find_cluster, hkpr_par, hkpr_seq, ncp_prnibble, nibble_par,
    nibble_seq, nibble_with_target_par, prnibble_par, prnibble_seq, rand_hkpr_par, rand_hkpr_seq,
    run_batch, sweep_cut_par, sweep_cut_seq, try_run_batch, Algorithm, CancelToken, Checkpoint,
    ClusterResult, Diffusion, DiffusionStats, Direction, DirectionMode, DirectionParams, Embedding,
    Engine, EngineBuilder, EngineHandle, EngineLimits, EvolvingParams, GraphCache, GraphStore,
    GraphSummary, HkprParams, InvalidSeed, KClusters, LifecycleSnapshot, LocalDiffusion, NcpParams,
    NibbleParams, PartialResult, PipelineParams, PrNibbleParams, PushRule, Query, QueryBudget,
    QueryError, RandHkprParams, RefineStats, RefinedCut, RhoGrid, Seed, Service, ServiceBuilder,
    ServiceEngine, SweepCut, Trip, TrippedDiffusion, TrippedRefinement, Workspace,
    WorkspaceBudgetExceeded, RETRY_AFTER_FLOOR,
};
pub use lgc_graph::{
    induced_cut_subgraph, CsrBackend, CsrCompressed, CsrPlain, CutSubgraph, Graph, GraphBuilder,
};
pub use lgc_parallel::Pool;
