//! Property-based tests on diffusion invariants, over random graphs,
//! seeds, parameters, and thread counts.

use plgc::cluster as lgc;
use plgc::{Pool, Seed};
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = (plgc::Graph, u32)> {
    (10usize..200, 0u64..1000).prop_map(|(n, s)| {
        let g = plgc::graph::gen::rand_local(n.max(10), 4, s);
        let seed = plgc::graph::largest_component(&g)[0];
        (g, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nibble_mass_never_exceeds_one((g, v) in small_graph(), t_max in 1usize..12, threads in 1usize..=3) {
        let pool = Pool::new(threads);
        let d = lgc::nibble_par(&pool, &g, &Seed::single(v), &lgc::NibbleParams { t_max, eps: 1e-6, ..Default::default() });
        let total = d.total_mass();
        prop_assert!(total <= 1.0 + 1e-9, "mass {}", total);
        prop_assert!(d.p.iter().all(|&(_, m)| m > 0.0));
        prop_assert!((total + d.stats.residual_mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prnibble_conserves_mass((g, v) in small_graph(), alpha in 0.01f64..0.5, threads in 1usize..=3) {
        let pool = Pool::new(threads);
        let params = lgc::PrNibbleParams { alpha, eps: 1e-5, ..Default::default() };
        let d = lgc::prnibble_par(&pool, &g, &Seed::single(v), &params);
        prop_assert!((d.total_mass() + d.stats.residual_mass - 1.0).abs() < 1e-9);
        // Work bound (Theorem 3).
        prop_assert!((d.stats.pushed_volume as f64) <= 1.0 / (alpha * 1e-5));
    }

    #[test]
    fn hkpr_par_matches_seq_support((g, v) in small_graph(), t in 0.5f64..8.0, threads in 1usize..=3) {
        let params = lgc::HkprParams { t, n_levels: 10, eps: 1e-5, ..Default::default() };
        let seq = lgc::hkpr_seq(&g, &Seed::single(v), &params);
        let pool = Pool::new(threads);
        let par = lgc::hkpr_par(&pool, &g, &Seed::single(v), &params);
        prop_assert_eq!(seq.support_size(), par.support_size());
        prop_assert_eq!(seq.stats.pushes, par.stats.pushes);
        for (&(va, ma), &(vb, mb)) in seq.p.iter().zip(&par.p) {
            prop_assert_eq!(va, vb);
            prop_assert!((ma - mb).abs() <= 1e-12 * ma.abs().max(1.0));
        }
    }

    #[test]
    fn rand_hkpr_mass_exactly_one((g, v) in small_graph(), walks in 100usize..5000, threads in 1usize..=3) {
        let pool = Pool::new(threads);
        let params = lgc::RandHkprParams { t: 3.0, max_len: 8, walks, rng_seed: 1 };
        let d = lgc::rand_hkpr_par(&pool, &g, &Seed::single(v), &params);
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nibble_with_target_honors_its_contract((g, v) in small_graph(), phi in 0.001f64..0.9, threads in 1usize..=3) {
        let pool = Pool::new(threads);
        let params = lgc::NibbleParams { t_max: 15, eps: 1e-6, ..Default::default() };
        if let Some(sweep) = lgc::nibble_with_target_par(&pool, &g, &Seed::single(v), &params, phi) {
            prop_assert!(sweep.best_conductance <= phi, "returned {} > target {}", sweep.best_conductance, phi);
            prop_assert!(!sweep.cluster().is_empty());
            // The reported conductance is real.
            let direct = g.conductance(sweep.cluster());
            prop_assert!((direct - sweep.best_conductance).abs() < 1e-9);
        }
    }

    #[test]
    fn cluster_results_are_valid_sets((g, v) in small_graph(), threads in 1usize..=3) {
        let pool = Pool::new(threads);
        let res = lgc::find_cluster(
            &pool, &g, &Seed::single(v),
            &lgc::Algorithm::PrNibble(lgc::PrNibbleParams { alpha: 0.1, eps: 1e-5, ..Default::default() }),
        );
        // Cluster is non-empty, duplicate-free, within range, and its
        // conductance equals the direct computation.
        prop_assert!(!res.cluster.is_empty());
        let mut sorted = res.cluster.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), res.cluster.len());
        prop_assert!(res.cluster.iter().all(|&u| (u as usize) < g.num_vertices()));
        let direct = g.conductance(&res.cluster);
        prop_assert!((direct - res.conductance).abs() < 1e-9 || (direct.is_infinite() && res.conductance.is_infinite()));
    }
}

/// `ℓ₁` distance between two sparse diffusion vectors (union of supports).
fn l1_distance(a: &plgc::Diffusion, b: &plgc::Diffusion) -> f64 {
    let mut dist = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.p.len() || j < b.p.len() {
        match (a.p.get(i), b.p.get(j)) {
            (Some(&(va, ma)), Some(&(vb, mb))) if va == vb => {
                dist += (ma - mb).abs();
                i += 1;
                j += 1;
            }
            (Some(&(va, ma)), Some(&(vb, _))) if va < vb => {
                dist += ma.abs();
                i += 1;
            }
            (Some(_), Some(&(_, mb))) => {
                dist += mb.abs();
                j += 1;
            }
            (Some(&(_, ma)), None) => {
                dist += ma.abs();
                i += 1;
            }
            (None, Some(&(_, mb))) => {
                dist += mb.abs();
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Traversal direction must be invisible to the algorithms:
    /// push-pinned, pull-pinned, and auto runs of each parallel diffusion
    /// return the same vector. Nibble and HK-PR pull reproduces the push
    /// accumulation order exactly at one thread (bitwise); PR-Nibble's
    /// pull path re-brackets the residual commit, so everything is held
    /// to a tight ℓ₁ tolerance instead.
    #[test]
    fn diffusions_are_direction_invariant((g, v) in small_graph(), threads in 1usize..=3) {
        use plgc::ligra::DirectionParams;
        let pool = Pool::new(threads);
        let dirs = [
            DirectionParams::push_only(),
            DirectionParams::pull_only(),
            DirectionParams::default(),
        ];

        let nib: Vec<_> = dirs.iter().map(|&dir| {
            lgc::nibble_par(&pool, &g, &Seed::single(v), &lgc::NibbleParams { t_max: 8, eps: 1e-6, dir })
        }).collect();
        let hk: Vec<_> = dirs.iter().map(|&dir| {
            lgc::hkpr_par(&pool, &g, &Seed::single(v), &lgc::HkprParams { t: 3.0, n_levels: 8, eps: 1e-5, dir })
        }).collect();
        let pr: Vec<_> = dirs.iter().map(|&dir| {
            lgc::prnibble_par(&pool, &g, &Seed::single(v), &lgc::PrNibbleParams { alpha: 0.05, eps: 1e-5, dir, ..Default::default() })
        }).collect();

        for runs in [&nib, &hk, &pr] {
            for other in &runs[1..] {
                prop_assert!(l1_distance(&runs[0], other) < 1e-9);
            }
        }
        if threads == 1 {
            // Pull replays the push accumulation order per destination.
            prop_assert_eq!(&nib[0].p, &nib[1].p);
            prop_assert_eq!(&hk[0].p, &hk[1].p);
            prop_assert_eq!(nib[0].stats.pushes, nib[1].stats.pushes);
            prop_assert_eq!(hk[0].stats.pushes, hk[1].stats.pushes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The adaptive mass store must be invisible to the algorithm:
    /// PR-Nibble with dense-pinned and sparse-pinned `MassMap`s returns
    /// identical sorted vectors and conserves mass in both modes (and in
    /// the adaptive default).
    #[test]
    fn prnibble_dense_and_sparse_mass_maps_agree(
        (g, v) in small_graph(),
        alpha in 0.01f64..0.5,
        threads in 1usize..=3,
    ) {
        let pool = Pool::new(threads);
        let run = |dense_frac: f64| {
            let params = lgc::PrNibbleParams {
                alpha,
                eps: 1e-5,
                dense_frac,
                ..Default::default()
            };
            lgc::prnibble_par(&pool, &g, &Seed::single(v), &params)
        };
        let dense = run(0.0);            // every vector direct-indexed
        let sparse = run(f64::INFINITY); // every vector hash-backed
        let adaptive = run(lgc::PrNibbleParams::default().dense_frac);
        // Mass conservation must hold in every mode at every thread
        // count; the discrete comparisons below are gated on a single
        // thread, where runs are fully deterministic. (At threads > 1
        // the scheduler-dependent f64 accumulation order can move a
        // residual across the eps·d(v) threshold by an ulp, legitimately
        // changing push counts between backends.)
        for d in [&dense, &sparse, &adaptive] {
            prop_assert!((d.total_mass() + d.stats.residual_mass - 1.0).abs() < 1e-9);
        }
        if threads == 1 {
            prop_assert_eq!(dense.stats.pushes, sparse.stats.pushes);
            prop_assert_eq!(dense.stats.iterations, sparse.stats.iterations);
            prop_assert_eq!(dense.support_size(), sparse.support_size());
            prop_assert_eq!(adaptive.support_size(), sparse.support_size());
            for ((&(va, ma), &(vb, mb)), &(vc, mc)) in
                dense.p.iter().zip(&sparse.p).zip(&adaptive.p)
            {
                prop_assert_eq!(va, vb);
                prop_assert_eq!(va, vc);
                let scale = ma.abs().max(1.0);
                prop_assert!((ma - mb).abs() <= 1e-12 * scale, "v{}: {} vs {}", va, ma, mb);
                prop_assert!((ma - mc).abs() <= 1e-12 * scale, "v{}: {} vs {}", va, ma, mc);
            }
        }
    }
}
