//! Properties of the max-flow refinement stage ([`plgc::flow`]) and the
//! pipelines built on it:
//!
//! * **Monotone**: for every algorithm × backend × thread count sampled,
//!   `improve` returns a cut with conductance ≤ the sweep cut's — MQI
//!   never makes a query's answer worse.
//! * **Deterministic**: refinement of the same set, and whole
//!   `compute_embedding` sweeps, are *bitwise* identical across 1–4
//!   threads and across the plain/compressed CSR backends.
//! * **Budget-aware**: a refinement tripped by a [`QueryBudget`] comes
//!   back as a typed error whose [`PartialResult`] carries the
//!   *unrefined* input cut — the caller keeps a valid cluster either way.
//! * **Useful**: `find_k_clusters` recovers planted SBM partitions
//!   exactly, at any thread count.

use plgc::cluster as lgc;
use plgc::{
    Algorithm, CsrBackend, Engine, PipelineParams, Pool, Query, QueryBudget, QueryError, Seed, Trip,
};
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = (plgc::Graph, Vec<u32>)> {
    (30usize..200, 0u64..1000).prop_map(|(n, s)| {
        let g = plgc::graph::gen::rand_local(n.max(30), 4, s);
        let comp = plgc::graph::largest_component(&g);
        let seeds: Vec<u32> = comp
            .iter()
            .step_by((comp.len() / 8).max(1))
            .copied()
            .collect();
        (g, seeds)
    })
}

/// One query spec: `(algorithm index, seed index, parameter tweak)`.
fn query_specs() -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    proptest::collection::vec((0usize..5, 0usize..8, 0u64..3), 3..7)
}

fn make_algo(kind: usize, tweak: u64) -> Algorithm {
    match kind {
        0 => Algorithm::Nibble(lgc::NibbleParams {
            t_max: 6 + tweak as usize,
            eps: 1e-6,
            ..Default::default()
        }),
        1 => Algorithm::PrNibble(lgc::PrNibbleParams {
            alpha: 0.03 * (tweak + 1) as f64,
            eps: 1e-5,
            ..Default::default()
        }),
        2 => Algorithm::Hkpr(lgc::HkprParams {
            t: 2.0 + tweak as f64,
            n_levels: 8,
            eps: 1e-5,
            ..Default::default()
        }),
        3 => Algorithm::RandHkpr(lgc::RandHkprParams {
            walks: 1_000 + 500 * tweak as usize,
            max_len: 8,
            rng_seed: tweak,
            ..Default::default()
        }),
        _ => Algorithm::Evolving(lgc::EvolvingParams {
            max_steps: 10 + 5 * tweak as usize,
            rng_seed: tweak,
            ..Default::default()
        }),
    }
}

/// A small pipeline grid so the debug-mode suite stays fast.
fn quick_pipeline() -> PipelineParams {
    PipelineParams {
        rho_min: 1e-4,
        rho_max: 1e-2,
        nsamples: 4,
        ..PipelineParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The refinement contract: for every sampled algorithm, backend,
    /// and thread count, `engine.improve` never worsens conductance,
    /// and the conductance it reports is the graph's own measure of the
    /// returned set.
    #[test]
    fn refinement_never_worsens_conductance(
        (g, seeds) in small_graph(),
        specs in query_specs(),
        threads in 1usize..=4,
        compressed in any::<bool>(),
    ) {
        let c;
        let (plain_engine, packed_engine) = if compressed {
            c = plgc::CsrCompressed::from_graph(&g);
            (None, Some(Engine::builder(&c).pool(Pool::new(threads)).build()))
        } else {
            (Some(Engine::builder(&g).threads(threads).build()), None)
        };
        for (kind, si, tweak) in specs {
            let q = Query::new(
                Seed::single(seeds[si % seeds.len()]),
                make_algo(kind, tweak),
            );
            let (result, refined) = match (&plain_engine, &packed_engine) {
                (Some(e), _) => {
                    let r = e.run(&q);
                    let f = e.improve(&r);
                    (r, f)
                }
                (_, Some(e)) => {
                    let r = e.run(&q);
                    let f = e.improve(&r);
                    (r, f)
                }
                _ => unreachable!(),
            };
            prop_assert!(
                refined.conductance <= result.conductance,
                "{:?}: refined {} > sweep {}",
                q.algo,
                refined.conductance,
                result.conductance
            );
            prop_assert_eq!(refined.initial_conductance, result.conductance);
            prop_assert_eq!(refined.conductance, g.conductance(&refined.cluster));
            // The refined set is a subset of the input cut.
            let mut input = result.cluster.clone();
            input.sort_unstable();
            prop_assert!(refined
                .cluster
                .iter()
                .all(|v| input.binary_search(v).is_ok()));
        }
    }

    /// Refinement of the same set, and whole embedding sweeps, are
    /// bitwise identical across thread counts and storage backends:
    /// MQI is sequential and canonical, the batched grid is
    /// bit-identical to 1-thread runs, and both backends enumerate
    /// neighbors in the same order.
    #[test]
    fn refinement_and_embeddings_are_bitwise_deterministic(
        (g, seeds) in small_graph(),
        threads in 2usize..=4,
    ) {
        let c = plgc::CsrCompressed::from_graph(&g);
        let base = Engine::builder(&g).threads(1).build();
        let wide = Engine::builder(&g).threads(threads).build();
        let packed = Engine::builder(&c).pool(Pool::new(threads)).build();
        let params = quick_pipeline();
        for &seed in seeds.iter().take(3) {
            let result = base.run(&Query::new(
                Seed::single(seed),
                Algorithm::PrNibble(lgc::PrNibbleParams::default()),
            ));
            let a = base.improve(&result);
            let b = wide.improve_set(&result.cluster);
            let d = packed.improve_set(&result.cluster);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &d);

            let e1 = base.compute_embedding(seed, &params);
            let e2 = wide.compute_embedding(seed, &params);
            let e3 = packed.compute_embedding(seed, &params);
            prop_assert_eq!(&e1, &e2);
            prop_assert_eq!(&e1, &e3);
        }
    }

    /// A budget-tripped refinement is a typed error, not a panic and
    /// not a silent fallback: `try_improve` under a zero work budget
    /// returns [`QueryError::WorkBudgetExceeded`] whose
    /// [`PartialResult`] is the *unrefined* input cut, while the plain
    /// `improve` of the same cut genuinely refines it.
    #[test]
    fn tripped_refinement_returns_the_unrefined_cut(k in 6u32..14) {
        let g = plgc::graph::gen::two_cliques_bridge(k as usize);
        let engine = Engine::builder(&g).threads(2).build();
        let result = engine.run(&Query::new(
            Seed::single(3),
            Algorithm::PrNibble(lgc::PrNibbleParams::default()),
        ));
        prop_assert!(!result.cluster.is_empty());

        let zero = QueryBudget::unlimited().with_max_edges_traversed(0);
        let err = engine
            .try_improve(&result, &zero)
            .expect_err("flow must trip under a zero work budget");
        prop_assert_eq!(err.trip(), Some(Trip::WorkBudget));
        prop_assert!(matches!(err, QueryError::WorkBudgetExceeded(_)));
        let partial = err.partial().expect("trip errors carry a partial");
        let sweep = partial.sweep.as_ref().expect("refinement partial keeps the sweep");
        prop_assert_eq!(sweep.cluster(), &result.cluster[..]);
        prop_assert_eq!(sweep.best_conductance, result.conductance);
        let diffusion = partial.diffusion.as_ref().expect("and the diffusion");
        prop_assert_eq!(&diffusion.p, &result.diffusion.p);

        // The same input refines fine without the budget (monotone, and
        // strictly better on the sloppy bridge set below).
        let refined = engine.improve(&result);
        prop_assert!(refined.conductance <= result.conductance);
        let sloppy: Vec<u32> = (3..k + 3).collect();
        let repaired = engine.improve_set(&sloppy);
        prop_assert!(repaired.conductance < g.conductance(&sloppy));
    }

    /// End-to-end pipeline acceptance: `find_k_clusters` recovers a
    /// planted 3-block SBM partition exactly, at any thread count.
    #[test]
    fn find_k_clusters_recovers_planted_blocks(
        sbm_seed in 0u64..1000,
        threads in 1usize..=4,
    ) {
        let (g, labels) = plgc::graph::gen::sbm(&[20, 20, 20], 0.45, 0.01, sbm_seed);
        // Skip the rare unidentifiable realization (~1% of draws): a
        // disconnected graph (isolated vertices are unseedable by
        // design), or one where some vertex has at least as many
        // neighbors in a foreign block as in its own — such a vertex is
        // structurally ambiguous, and no conductance-based method can
        // be required to side with the generator's label for it.
        let identifiable = (0..g.num_vertices() as u32).all(|v| {
            let mut per = [0usize; 3];
            g.for_each_neighbor(v, |u| per[labels[u as usize] as usize] += 1);
            let own = labels[v as usize] as usize;
            per.iter().enumerate().all(|(b, &c)| b == own || c < per[own])
        });
        if !identifiable || plgc::graph::largest_component(&g).len() != g.num_vertices() {
            continue;
        }
        let engine = Engine::builder(&g).threads(threads).build();
        let kc = engine.find_k_clusters(3, &quick_pipeline());
        prop_assert_eq!(kc.clusters.len(), 3);
        for (label, cluster) in kc.clusters.iter().enumerate() {
            let expected: Vec<u32> = (label as u32 * 20..(label as u32 + 1) * 20).collect();
            prop_assert_eq!(cluster, &expected);
        }
        for (v, &l) in kc.assignment.iter().enumerate() {
            prop_assert!(kc.clusters[l as usize].contains(&(v as u32)));
        }
    }
}
