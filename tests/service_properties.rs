//! Concurrency properties of the [`Service`]: any number of OS threads
//! hammering one service (shared pool, several graphs, mixed algorithms,
//! warm recycled workspaces, populated caches) must be observationally
//! invisible — every result bit-identical to the same query on a cold
//! engine.
//!
//! Exactness tiers mirror `tests/engine_properties.rs`:
//!
//! * **shared pool of 1 thread** (the concurrency comes entirely from
//!   the callers) — every algorithm is fully deterministic, so every
//!   result is compared *bit-for-bit* against a cold 1-thread engine;
//! * **shared pool of >1 threads** — rand-HK-PR and the evolving-set
//!   process stay exactly reproducible (RNG-stream / integer-count
//!   determinism) and are still compared bit-for-bit, while the float
//!   diffusions are held to a tight `ℓ₁` tolerance.

use plgc::cluster as lgc;
use plgc::{Algorithm, Engine, Pool, Query, Seed, Service};
use proptest::prelude::*;
use std::sync::Arc;

fn make_algo(kind: usize, tweak: u64) -> Algorithm {
    match kind {
        0 => Algorithm::Nibble(lgc::NibbleParams {
            t_max: 6 + tweak as usize,
            eps: 1e-6,
            ..Default::default()
        }),
        1 => Algorithm::PrNibble(lgc::PrNibbleParams {
            alpha: 0.03 * (tweak + 1) as f64,
            eps: 1e-5,
            ..Default::default()
        }),
        2 => Algorithm::Hkpr(lgc::HkprParams {
            t: 2.0 + tweak as f64,
            n_levels: 8,
            eps: 1e-5,
            ..Default::default()
        }),
        3 => Algorithm::RandHkpr(lgc::RandHkprParams {
            walks: 1_000 + 500 * tweak as usize,
            max_len: 8,
            rng_seed: tweak,
            ..Default::default()
        }),
        _ => Algorithm::Evolving(lgc::EvolvingParams {
            max_steps: 10 + 5 * tweak as usize,
            rng_seed: tweak,
            ..Default::default()
        }),
    }
}

/// Whether this algorithm's parallel run is exactly reproducible at any
/// thread count (integer/RNG-stream determinism).
fn exact_at_any_threads(algo: &Algorithm) -> bool {
    matches!(algo, Algorithm::RandHkpr(_) | Algorithm::Evolving(_))
}

/// `ℓ₁` distance between two sparse diffusion vectors (union of supports).
fn l1_distance(a: &lgc::Diffusion, b: &lgc::Diffusion) -> f64 {
    let mut dist = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.p.len() || j < b.p.len() {
        match (a.p.get(i), b.p.get(j)) {
            (Some(&(va, ma)), Some(&(vb, mb))) if va == vb => {
                dist += (ma - mb).abs();
                i += 1;
                j += 1;
            }
            (Some(&(va, ma)), Some(&(vb, _))) if va < vb => {
                dist += ma.abs();
                i += 1;
            }
            (Some(_), Some(&(_, mb))) => {
                dist += mb.abs();
                j += 1;
            }
            (Some(&(_, ma)), None) => {
                dist += ma.abs();
                i += 1;
            }
            (None, Some(&(_, mb))) => {
                dist += mb.abs();
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    dist
}

/// A two-tenant service: one power-law-ish graph, one locally-clustered
/// one, both deterministic from the strategy's seed.
fn build_service(threads: usize, g_seed: u64) -> Service {
    let (sbm, _) = plgc::graph::gen::sbm(&[30, 30, 30, 30], 0.3, 0.01, g_seed);
    Service::builder()
        .pool(Pool::shared(threads))
        .add_graph("sbm", sbm)
        .add_graph("local", plgc::graph::gen::rand_local(200, 4, g_seed))
        .build()
}

/// One client's schedule: `(graph idx, algorithm kind, seed vertex
/// tweak, param tweak)` per query.
fn schedules() -> impl Strategy<Value = Vec<Vec<(usize, usize, u32, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..2, 0usize..5, 0u32..60, 0u64..3), 2..6),
        2..5, // number of concurrent client threads
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline contract: N OS threads × mixed algorithms × 2 graphs
    /// through one shared-1-thread-pool Service, every result bitwise
    /// equal to a fresh cold 1-thread Engine run of the same query.
    #[test]
    fn concurrent_mixed_queries_are_bitwise_cold(
        clients in schedules(),
        g_seed in 0u64..500,
    ) {
        let svc = build_service(1, g_seed);
        let names = ["sbm", "local"];
        // Hammer the service concurrently, collecting (query, result).
        let answered: Vec<(usize, Query, lgc::ClusterResult)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = clients
                    .iter()
                    .map(|schedule| {
                        let svc = &svc;
                        scope.spawn(move || {
                            schedule
                                .iter()
                                .map(|&(gi, kind, vtweak, ptweak)| {
                                    let g = svc.graph(names[gi]).unwrap();
                                    let v = vtweak % g.num_vertices() as u32;
                                    let q = Query::new(
                                        Seed::single(v),
                                        make_algo(kind, ptweak),
                                    );
                                    let res = svc.engine(names[gi]).unwrap().run(&q);
                                    (gi, q, res)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
        // Every answer matches its cold twin bit-for-bit.
        for (gi, q, got) in answered {
            let g = svc.graph(names[gi]).unwrap();
            let engine = Engine::builder(g.as_ref()).threads(1).build();
            let want = engine.run(&q);
            prop_assert_eq!(&got.diffusion.p, &want.diffusion.p, "{:?}", q.algo);
            prop_assert_eq!(got.diffusion.stats, want.diffusion.stats);
            prop_assert_eq!(&got.cluster, &want.cluster);
            prop_assert_eq!(got.conductance, want.conductance);
            prop_assert_eq!(&got.sweep.conductances, &want.sweep.conductances);
        }
    }

    /// Same hammering over a multi-thread shared pool: the RNG-stream /
    /// integer-count algorithms stay bitwise; float diffusions hold a
    /// tight ℓ₁ bound (their push phase accumulates in scheduler order,
    /// so even two cold runs differ in ulps).
    #[test]
    fn concurrent_queries_over_parallel_pool(
        clients in schedules(),
        g_seed in 0u64..500,
    ) {
        let svc = build_service(2, g_seed);
        let names = ["sbm", "local"];
        let answered: Vec<(usize, Query, lgc::ClusterResult)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = clients
                    .iter()
                    .map(|schedule| {
                        let svc = &svc;
                        scope.spawn(move || {
                            schedule
                                .iter()
                                .map(|&(gi, kind, vtweak, ptweak)| {
                                    let g = svc.graph(names[gi]).unwrap();
                                    let v = vtweak % g.num_vertices() as u32;
                                    let q = Query::new(
                                        Seed::single(v),
                                        make_algo(kind, ptweak),
                                    );
                                    let res = svc.engine(names[gi]).unwrap().run(&q);
                                    (gi, q, res)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
        for (gi, q, got) in answered {
            let g = svc.graph(names[gi]).unwrap();
            let cold = lgc::find_cluster(&Pool::new(2), g.as_ref(), &q.seed, &q.algo);
            if exact_at_any_threads(&q.algo) {
                prop_assert_eq!(&got.diffusion.p, &cold.diffusion.p);
                prop_assert_eq!(&got.cluster, &cold.cluster);
                prop_assert_eq!(got.conductance, cold.conductance);
            } else {
                prop_assert!(l1_distance(&got.diffusion, &cold.diffusion) < 1e-9);
                prop_assert!((got.conductance - cold.conductance).abs() < 1e-9);
            }
        }
    }

    /// ψ-cache hit/miss equivalence: a parameter schedule with repeats
    /// runs through one service engine (misses populate, repeats hit);
    /// every result is bit-identical to a cold fresh-engine run, and the
    /// repeats provably hit the cache.
    #[test]
    fn psi_cache_hits_are_bitwise_equal_to_misses(
        specs in proptest::collection::vec((0usize..3, 0usize..3, 0u32..40), 4..12),
        g_seed in 0u64..500,
    ) {
        let g = plgc::graph::gen::rand_local(250, 4, g_seed);
        let engine = Engine::builder(&g).threads(1).build();
        let ts = [2.0, 4.5, 7.0];
        let levels = [6, 10, 14];
        let mut distinct = std::collections::HashSet::new();
        for &(ti, li, v) in &specs {
            let algo = Algorithm::Hkpr(lgc::HkprParams {
                t: ts[ti],
                n_levels: levels[li],
                eps: 1e-5,
                ..Default::default()
            });
            distinct.insert((ti, li));
            let q = Query::new(Seed::single(v % 250), algo);
            let warm = engine.run(&q);
            let cold = Engine::builder(&g).threads(1).build().run(&q);
            prop_assert_eq!(&warm.diffusion.p, &cold.diffusion.p);
            prop_assert_eq!(warm.diffusion.stats, cold.diffusion.stats);
            prop_assert_eq!(&warm.cluster, &cold.cluster);
            prop_assert_eq!(&warm.sweep.conductances, &cold.sweep.conductances);
        }
        let (hits, misses) = engine.cache().psi_stats();
        prop_assert_eq!(misses, distinct.len() as u64);
        prop_assert_eq!(hits, (specs.len() - distinct.len()) as u64);
    }
}

/// An exhausted per-graph workspace byte budget surfaces as the typed
/// [`plgc::WorkspaceBudgetExceeded`] error from `try_run` — never a
/// panic — while the infallible `run` path keeps answering (on a
/// transient, unpooled workspace) bit-identically to a cold engine.
#[test]
fn exhausted_workspace_budget_is_a_typed_error_not_a_panic() {
    let g = plgc::graph::gen::rand_local(200, 4, 7);
    let mut svc = Service::builder().pool(Pool::shared(1)).build();
    svc.add_graph_with_budget("tiny", g.clone(), 1);
    let q = Query::new(
        Seed::single(0),
        Algorithm::PrNibble(lgc::PrNibbleParams::default()),
    );
    // The pool has never parked a workspace, so the first fresh checkout
    // is charged at the zero watermark and succeeds even under a 1-byte
    // budget...
    let first = svc
        .engine("tiny")
        .unwrap()
        .try_run(&q)
        .expect("zero watermark");
    // ...but restoring it recorded its true footprint, so the next
    // budgeted checkout is denied — with the numbers, not a panic.
    let err = svc.engine("tiny").unwrap().try_run(&q).unwrap_err();
    let plgc::QueryError::WorkspaceBudgetExceeded(denied) = &err else {
        panic!("expected a workspace-budget refusal, got {err:?}");
    };
    assert_eq!(denied.budget_bytes, 1);
    assert_eq!(denied.in_flight_bytes, 0);
    assert!(
        denied.requested_bytes > 1,
        "watermark learned from the restore"
    );
    assert!(err.is_retryable(), "budget refusals are transient");
    assert!(err.to_string().contains("budget"));
    // The shed shows up in the graph's lifecycle counters.
    let stats = svc.lifecycle("tiny").unwrap();
    assert_eq!(stats.shed_workspace, 1);
    assert_eq!(stats.completed, 1);
    // The infallible front door degrades to a transient workspace and
    // stays bitwise equal to a cold engine.
    let again = svc.engine("tiny").unwrap().run(&q);
    let cold = Engine::builder(&g).threads(1).build().run(&q);
    assert_eq!(first.diffusion.p, cold.diffusion.p);
    assert_eq!(again.diffusion.p, cold.diffusion.p);
    assert_eq!(again.cluster, cold.cluster);
    // A roomy budget never denies this workload.
    svc.add_graph_with_budget("roomy", g.clone(), 1 << 30);
    assert!(svc.engine("roomy").unwrap().try_run(&q).is_ok());
    assert!(svc.engine("roomy").unwrap().try_run(&q).is_ok());
}

/// Service survives being shared the boring way too: behind an `Arc`,
/// queried from detached threads, with warm workspaces accumulating.
#[test]
fn arc_shared_service_across_spawned_threads() {
    let svc = Arc::new(build_service(1, 42));
    let handles: Vec<_> = (0..4u32)
        .map(|i| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let name = if i % 2 == 0 { "sbm" } else { "local" };
                let engine = svc.engine(name).unwrap();
                let q = Query::new(
                    Seed::single(i * 13 % 120),
                    Algorithm::PrNibble(lgc::PrNibbleParams::default()),
                );
                let got = engine.run(&q);
                let cold = Engine::builder(svc.graph(name).unwrap().as_ref())
                    .threads(1)
                    .build()
                    .run(&q);
                assert_eq!(got.diffusion.p, cold.diffusion.p);
                assert_eq!(got.cluster, cold.cluster);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // The checkout pools parked the in-flight workspaces.
    let warm: usize = ["sbm", "local"]
        .iter()
        .map(|n| {
            let e = svc.engine(n).unwrap();
            // A follow-up query on a warm service still matches cold.
            let q = Query::new(
                Seed::single(0),
                Algorithm::Nibble(lgc::NibbleParams::default()),
            );
            let got = e.run(&q);
            let cold = Engine::builder(svc.graph(n).unwrap().as_ref())
                .threads(1)
                .build()
                .run(&q);
            assert_eq!(got.diffusion.p, cold.diffusion.p);
            usize::from(e.cache().psi_stats().1 == 0)
        })
        .sum();
    assert_eq!(warm, 2, "no HK-PR queries ran, so no psi misses");
}
