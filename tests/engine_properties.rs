//! Workspace-reuse properties: a warm [`Engine`] must be observationally
//! identical to fresh free-function runs — interleaved repeated queries
//! (mixed algorithms, mixed seeds, 1–4 threads) against random graphs.
//!
//! Exactness tiers, by what the machine can promise:
//!
//! * **1 thread** — every pipeline is fully deterministic, so warm vs
//!   cold is compared *bit-for-bit* (vector, stats, cluster, φ).
//! * **>1 threads** — the push engines accumulate `f64` with atomic
//!   adds in scheduler order, so even two cold runs differ in ulps;
//!   rand-HK-PR (per-walk RNG streams) and the evolving-set process
//!   (integer counts) stay exactly reproducible and are still compared
//!   bit-for-bit, while the float diffusions are held to a tight `ℓ₁`
//!   tolerance.

use plgc::cluster as lgc;
use plgc::{Algorithm, Engine, Pool, Query, Seed};
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = (plgc::Graph, Vec<u32>)> {
    (30usize..250, 0u64..1000).prop_map(|(n, s)| {
        let g = plgc::graph::gen::rand_local(n.max(30), 4, s);
        let comp = plgc::graph::largest_component(&g);
        let seeds: Vec<u32> = comp
            .iter()
            .step_by((comp.len() / 8).max(1))
            .copied()
            .collect();
        (g, seeds)
    })
}

/// One query spec: `(algorithm index, seed index, parameter tweak)`.
fn query_specs() -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    proptest::collection::vec((0usize..5, 0usize..8, 0u64..3), 4..10)
}

fn make_algo(kind: usize, tweak: u64) -> Algorithm {
    match kind {
        0 => Algorithm::Nibble(lgc::NibbleParams {
            t_max: 6 + tweak as usize,
            eps: 1e-6,
            ..Default::default()
        }),
        1 => Algorithm::PrNibble(lgc::PrNibbleParams {
            alpha: 0.03 * (tweak + 1) as f64,
            eps: 1e-5,
            ..Default::default()
        }),
        2 => Algorithm::Hkpr(lgc::HkprParams {
            t: 2.0 + tweak as f64,
            n_levels: 8,
            eps: 1e-5,
            ..Default::default()
        }),
        3 => Algorithm::RandHkpr(lgc::RandHkprParams {
            walks: 1_000 + 500 * tweak as usize,
            max_len: 8,
            rng_seed: tweak,
            ..Default::default()
        }),
        _ => Algorithm::Evolving(lgc::EvolvingParams {
            max_steps: 10 + 5 * tweak as usize,
            rng_seed: tweak,
            ..Default::default()
        }),
    }
}

/// Whether this algorithm's parallel run is exactly reproducible at any
/// thread count (integer/RNG-stream determinism).
fn exact_at_any_threads(algo: &Algorithm) -> bool {
    matches!(algo, Algorithm::RandHkpr(_) | Algorithm::Evolving(_))
}

/// `ℓ₁` distance between two sparse diffusion vectors (union of supports).
fn l1_distance(a: &lgc::Diffusion, b: &lgc::Diffusion) -> f64 {
    let mut dist = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.p.len() || j < b.p.len() {
        match (a.p.get(i), b.p.get(j)) {
            (Some(&(va, ma)), Some(&(vb, mb))) if va == vb => {
                dist += (ma - mb).abs();
                i += 1;
                j += 1;
            }
            (Some(&(va, ma)), Some(&(vb, _))) if va < vb => {
                dist += ma.abs();
                i += 1;
            }
            (Some(_), Some(&(_, mb))) => {
                dist += mb.abs();
                j += 1;
            }
            (Some(&(_, ma)), None) => {
                dist += ma.abs();
                i += 1;
            }
            (None, Some(&(_, mb))) => {
                dist += mb.abs();
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole contract: interleaved repeated `engine.run` calls
    /// over one warm workspace match fresh free-function runs.
    #[test]
    fn warm_engine_matches_cold_free_function_runs(
        (g, seeds) in small_graph(),
        specs in query_specs(),
        threads in 1usize..=4,
    ) {
        let engine = Engine::builder(&g).threads(threads).build();
        let pool = Pool::new(threads);
        for (kind, si, tweak) in specs {
            let seed = Seed::single(seeds[si % seeds.len()]);
            let algo = make_algo(kind, tweak);
            let warm = engine.run(&Query::new(seed.clone(), algo.clone()));
            let cold = lgc::find_cluster(&pool, &g, &seed, &algo);
            if threads == 1 || exact_at_any_threads(&algo) {
                prop_assert_eq!(&warm.diffusion.p, &cold.diffusion.p);
                prop_assert_eq!(warm.diffusion.stats, cold.diffusion.stats);
                prop_assert_eq!(&warm.cluster, &cold.cluster);
                prop_assert_eq!(warm.conductance, cold.conductance);
                prop_assert_eq!(&warm.sweep.conductances, &cold.sweep.conductances);
            } else {
                prop_assert!(l1_distance(&warm.diffusion, &cold.diffusion) < 1e-9);
                prop_assert!((warm.conductance - cold.conductance).abs() < 1e-9);
            }
        }
    }

    /// `engine.diffuse` (no sweep) under the same interleaving: equal to
    /// the `*_par` free functions.
    #[test]
    fn warm_engine_diffuse_matches_par_free_functions(
        (g, seeds) in small_graph(),
        specs in query_specs(),
        threads in 1usize..=4,
    ) {
        let engine = Engine::builder(&g).threads(threads).build();
        let pool = Pool::new(threads);
        for (kind, si, tweak) in specs {
            let seed = Seed::single(seeds[si % seeds.len()]);
            let algo = make_algo(kind, tweak);
            let warm = engine.diffuse(&seed, &algo);
            let cold = match &algo {
                Algorithm::Nibble(p) => lgc::nibble_par(&pool, &g, &seed, p),
                Algorithm::PrNibble(p) => lgc::prnibble_par(&pool, &g, &seed, p),
                Algorithm::Hkpr(p) => lgc::hkpr_par(&pool, &g, &seed, p),
                Algorithm::RandHkpr(p) => lgc::rand_hkpr_par(&pool, &g, &seed, p),
                Algorithm::Evolving(p) => {
                    lgc::evolving_set_par(&pool, &g, &seed, p).indicator()
                }
            };
            if threads == 1 || exact_at_any_threads(&algo) {
                prop_assert_eq!(&warm.p, &cold.p);
            } else {
                prop_assert!(l1_distance(&warm, &cold) < 1e-9);
            }
        }
    }

    /// Backend equivalence, same exactness tiers as warm-vs-cold: every
    /// diffusion over the byte-compressed CSR backend matches plain CSR
    /// — bitwise at 1 thread (and at any thread count for the
    /// integer/RNG-exact algorithms), tight ℓ₁ for the float pushes at
    /// >1 threads (where even two plain runs differ in ulps).
    #[test]
    fn compressed_backend_matches_plain(
        (g, seeds) in small_graph(),
        specs in query_specs(),
        threads in 1usize..=4,
    ) {
        let c = plgc::CsrCompressed::from_graph(&g);
        let plain = Engine::builder(&g).threads(threads).build();
        let packed = Engine::builder(&c).pool(Pool::new(threads)).build();
        for (kind, si, tweak) in specs {
            let seed = Seed::single(seeds[si % seeds.len()]);
            let algo = make_algo(kind, tweak);
            let q = Query::new(seed, algo);
            let a = plain.run(&q);
            let b = packed.run(&q);
            if threads == 1 || exact_at_any_threads(&q.algo) {
                prop_assert_eq!(&a.diffusion.p, &b.diffusion.p, "{:?}", q.algo);
                prop_assert_eq!(a.diffusion.stats, b.diffusion.stats);
                prop_assert_eq!(&a.cluster, &b.cluster);
                prop_assert_eq!(a.conductance, b.conductance);
                prop_assert_eq!(&a.sweep.conductances, &b.sweep.conductances);
            } else {
                prop_assert!(l1_distance(&a.diffusion, &b.diffusion) < 1e-9);
                prop_assert!((a.conductance - b.conductance).abs() < 1e-9);
            }
        }
    }

    /// With the traversal pinned to dense pulls, every destination sums
    /// its sources sequentially in ascending order — so compressed vs
    /// plain is *bitwise* identical at any thread count (the decode
    /// order guarantee the compressed backend exists to preserve).
    #[test]
    fn pull_pinned_queries_are_bitwise_equal_across_backends(
        (g, seeds) in small_graph(),
        specs in query_specs(),
        threads in 1usize..=4,
    ) {
        let c = plgc::CsrCompressed::from_graph(&g);
        let pin = plgc::DirectionParams::pull_only();
        let plain = Engine::builder(&g).threads(threads).direction(pin).build();
        let packed = Engine::builder(&c)
            .pool(Pool::new(threads))
            .direction(pin)
            .build();
        for (kind, si, tweak) in specs {
            let seed = Seed::single(seeds[si % seeds.len()]);
            let q = Query::new(seed, make_algo(kind, tweak));
            let a = plain.run(&q);
            let b = packed.run(&q);
            prop_assert_eq!(&a.diffusion.p, &b.diffusion.p, "{:?}", q.algo);
            prop_assert_eq!(a.diffusion.stats, b.diffusion.stats);
            prop_assert_eq!(&a.cluster, &b.cluster);
            prop_assert_eq!(a.conductance, b.conductance);
            prop_assert_eq!(&a.sweep.conductances, &b.sweep.conductances);
        }
    }

    /// Batch contract: every item of a mixed-algorithm batch is
    /// bit-identical to a 1-thread engine run of the same query, at any
    /// batch pool size.
    #[test]
    fn run_batch_items_equal_one_thread_engine_runs(
        (g, seeds) in small_graph(),
        specs in query_specs(),
        threads in 1usize..=4,
    ) {
        let queries: Vec<Query> = specs
            .iter()
            .map(|&(kind, si, tweak)| {
                Query::new(Seed::single(seeds[si % seeds.len()]), make_algo(kind, tweak))
            })
            .collect();
        let batch = plgc::run_batch(&Pool::new(threads), &g, &queries);
        let engine = Engine::builder(&g).threads(1).build();
        for (q, got) in queries.iter().zip(&batch) {
            let want = engine.run(q);
            prop_assert_eq!(&got.diffusion.p, &want.diffusion.p);
            prop_assert_eq!(got.diffusion.stats, want.diffusion.stats);
            prop_assert_eq!(&got.cluster, &want.cluster);
            prop_assert_eq!(got.conductance, want.conductance);
        }
    }
}
