//! Cross-crate integration tests: the full diffusion → sweep pipeline on
//! every algorithm, sequential vs parallel, across thread counts.

use plgc::cluster as lgc;
use plgc::{Algorithm, Pool, Seed};

/// Every algorithm must recover a planted clique exactly through the full
/// `find_cluster` pipeline.
#[test]
fn all_algorithms_recover_planted_clique() {
    let g = plgc::graph::gen::two_cliques_bridge(16);
    let pool = Pool::new(2);
    let algos: Vec<(&str, Algorithm)> = vec![
        (
            "nibble",
            Algorithm::Nibble(lgc::NibbleParams {
                t_max: 25,
                eps: 1e-9,
                ..Default::default()
            }),
        ),
        (
            "prnibble",
            Algorithm::PrNibble(lgc::PrNibbleParams::default()),
        ),
        ("hkpr", Algorithm::Hkpr(lgc::HkprParams::default())),
        (
            "randhkpr",
            Algorithm::RandHkpr(lgc::RandHkprParams {
                walks: 50_000,
                ..Default::default()
            }),
        ),
    ];
    for (name, algo) in algos {
        let res = lgc::find_cluster(&pool, &g, &Seed::single(5), &algo);
        let mut cluster = res.cluster.clone();
        cluster.sort_unstable();
        assert_eq!(cluster, (0..16).collect::<Vec<u32>>(), "{name}");
        assert!(
            (res.conductance - 1.0 / (16.0 * 15.0 + 1.0)).abs() < 1e-12,
            "{name}"
        );
    }
}

/// Deterministic algorithms: sequential and parallel versions agree on
/// the final *cluster* for every thread count (vectors agree to float
/// rounding; sweep ties are broken deterministically).
#[test]
fn deterministic_algorithms_agree_across_thread_counts() {
    let g = plgc::graph::gen::rmat_graph500(11, 8, 13);
    let seed = Seed::single(plgc::graph::largest_component(&g)[0]);
    let nibble = lgc::NibbleParams {
        t_max: 15,
        eps: 1e-7,
        ..Default::default()
    };
    let hk = lgc::HkprParams {
        t: 8.0,
        n_levels: 15,
        eps: 1e-6,
        ..Default::default()
    };

    let base_nibble = lgc::nibble_seq(&g, &seed, &nibble);
    let base_hk = lgc::hkpr_seq(&g, &seed, &hk);
    let seq_pool = Pool::new(1);
    let nibble_cut = lgc::sweep_cut_seq(&g, &base_nibble.p);
    let hk_cut = lgc::sweep_cut_seq(&g, &base_hk.p);
    // Cross-check the two sweep implementations on the same vectors.
    assert_eq!(
        nibble_cut.conductances,
        lgc::sweep_cut_par(&seq_pool, &g, &base_nibble.p).conductances
    );

    for threads in [2, 4] {
        let pool = Pool::new(threads);
        let n = lgc::nibble_par(&pool, &g, &seed, &nibble);
        let h = lgc::hkpr_par(&pool, &g, &seed, &hk);
        assert_eq!(n.support_size(), base_nibble.support_size(), "t={threads}");
        assert_eq!(h.support_size(), base_hk.support_size(), "t={threads}");
        let nc = lgc::sweep_cut_par(&pool, &g, &n.p);
        let hc = lgc::sweep_cut_par(&pool, &g, &h.p);
        assert_eq!(nc.best_size, nibble_cut.best_size, "t={threads}");
        assert_eq!(hc.best_size, hk_cut.best_size, "t={threads}");
        assert!((nc.best_conductance - nibble_cut.best_conductance).abs() < 1e-9);
        assert!((hc.best_conductance - hk_cut.best_conductance).abs() < 1e-9);
    }
}

/// rand-HK-PR is *exactly* thread-count independent (per-walk RNG).
#[test]
fn rand_hkpr_bitwise_reproducible() {
    let g = plgc::graph::gen::barabasi_albert(3000, 4, 17);
    let seed = Seed::single(0);
    let params = lgc::RandHkprParams {
        t: 6.0,
        max_len: 12,
        walks: 30_000,
        rng_seed: 5,
    };
    let a = lgc::rand_hkpr_seq(&g, &seed, &params);
    for threads in [1, 2, 4] {
        let pool = Pool::new(threads);
        let b = lgc::rand_hkpr_par(&pool, &g, &seed, &params);
        assert_eq!(a.p, b.p, "threads={threads}");
    }
}

/// Multi-vertex seed sets (footnote 5) work through the whole pipeline.
#[test]
fn multi_seed_pipeline() {
    let (g, labels) = plgc::graph::gen::sbm(&[60, 60, 60], 0.3, 0.005, 23);
    let pool = Pool::new(2);
    let seeds: Vec<u32> = (0..180)
        .filter(|&v| labels[v as usize] == 1)
        .take(3)
        .collect();
    let res = lgc::find_cluster(
        &pool,
        &g,
        &Seed::set(seeds),
        &Algorithm::PrNibble(lgc::PrNibbleParams {
            alpha: 0.05,
            eps: 1e-7,
            ..Default::default()
        }),
    );
    let in_block = res
        .cluster
        .iter()
        .filter(|&&v| labels[v as usize] == 1)
        .count();
    assert!(
        in_block as f64 / res.cluster.len() as f64 > 0.9,
        "cluster should stay in the seeded block: {in_block}/{}",
        res.cluster.len()
    );
}

/// The work of the diffusions must not scale with graph size when the
/// cluster stays the same (the defining "local" property).
#[test]
fn local_running_time_independent_of_graph_size() {
    // Same planted clique embedded in increasingly large sparse graphs.
    let sizes = [2_000usize, 20_000, 200_000];
    let mut volumes = Vec::new();
    for &n in &sizes {
        let mut b = plgc::GraphBuilder::new(n);
        // clique on 0..12
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                b.edge(u, v);
            }
        }
        // bridge into a big cycle over the rest
        b.edge(0, 12);
        for v in 12..(n as u32 - 1) {
            b.edge(v, v + 1);
        }
        b.edge(n as u32 - 1, 12);
        let g = b.edges([]).build();
        let d = lgc::prnibble_seq(
            &g,
            &Seed::single(3),
            &lgc::PrNibbleParams {
                alpha: 0.05,
                eps: 1e-5,
                ..Default::default()
            },
        );
        volumes.push(d.stats.pushed_volume);
    }
    assert_eq!(volumes[0], volumes[1], "work must not grow with |V|");
    assert_eq!(volumes[1], volumes[2], "work must not grow with |V|");
}

/// The paper's interactive workflow (§1): find a cluster, remove it from
/// the graph, and keep going — each planted block of an SBM should come
/// out in turn.
#[test]
fn repeated_cluster_removal_peels_planted_blocks() {
    let (mut g, mut labels) = plgc::graph::gen::sbm(&[50, 50, 50, 50], 0.4, 0.004, 31);
    let pool = Pool::new(2);
    let params = lgc::PrNibbleParams {
        alpha: 0.05,
        eps: 1e-7,
        ..Default::default()
    };
    for round in 0..3 {
        let seed_vertex = (0..g.num_vertices() as u32)
            .find(|&v| g.degree(v) > 2)
            .unwrap();
        let res = lgc::find_cluster(
            &pool,
            &g,
            &Seed::single(seed_vertex),
            &Algorithm::PrNibble(params),
        );
        // The found cluster should be dominated by one block.
        let mut block_counts = std::collections::HashMap::new();
        for &v in &res.cluster {
            *block_counts.entry(labels[v as usize]).or_insert(0usize) += 1;
        }
        let (&top_block, &top) = block_counts.iter().max_by_key(|&(_, c)| *c).unwrap();
        assert!(
            top as f64 / res.cluster.len() as f64 > 0.9,
            "round {round}: cluster mixes blocks ({block_counts:?})"
        );
        let _ = top_block;
        // Peel it off and relabel.
        let (rest, mapping) = g.remove_vertices(&res.cluster);
        labels = mapping.iter().map(|&old| labels[old as usize]).collect();
        g = rest;
    }
    assert!(g.num_vertices() >= 50, "one block per round at most");
}

/// Theorem bounds hold across algorithms on a mid-sized graph.
#[test]
fn work_bounds_hold() {
    let g = plgc::graph::gen::rand_local(30_000, 5, 77);
    let seed = Seed::single(0);
    let pool = Pool::new(2);

    // PR-Nibble: Σ d(v) ≤ 1/(αε).
    let pr = lgc::PrNibbleParams {
        alpha: 0.01,
        eps: 1e-6,
        ..Default::default()
    };
    let d = lgc::prnibble_par(&pool, &g, &seed, &pr);
    assert!((d.stats.pushed_volume as f64) <= 1.0 / (pr.alpha * pr.eps));

    // Nibble: at most T iterations.
    let nb = lgc::NibbleParams {
        t_max: 7,
        eps: 1e-7,
        ..Default::default()
    };
    let d = lgc::nibble_par(&pool, &g, &seed, &nb);
    assert!(d.stats.iterations <= 7);

    // HK-PR: at most N levels.
    let hk = lgc::HkprParams {
        t: 5.0,
        n_levels: 9,
        eps: 1e-6,
        ..Default::default()
    };
    let d = lgc::hkpr_par(&pool, &g, &seed, &hk);
    assert!(d.stats.iterations <= 9);

    // rand-HK-PR: exactly `walks` walks of length ≤ K.
    let rh = lgc::RandHkprParams {
        t: 5.0,
        max_len: 6,
        walks: 10_000,
        rng_seed: 2,
    };
    let d = lgc::rand_hkpr_par(&pool, &g, &seed, &rh);
    assert_eq!(d.stats.pushes, 10_000);
    assert!(d.stats.edges_traversed <= 6 * 10_000);
}
