//! Query-lifecycle fault harness: budgets, cancellation, deadlines, and
//! (behind the `fault-inject` feature) deterministic trips at arbitrary
//! checkpoint ticks — across all five algorithms, both CSR backends, and
//! 1–4 threads.
//!
//! The contracts under test:
//!
//! * **No panics.** A tripped query returns a typed
//!   [`plgc::QueryError`] whose variant matches the trip cause, carrying
//!   a [`plgc::PartialResult`] of only-completed work.
//! * **Full pool recovery.** The workspace checkout a tripped query used
//!   is recycled like any other: the engine's warm count grows, and the
//!   next query checks it out normally.
//! * **Post-fault bitwise determinism.** A warm query issued right after
//!   a trip is identical to the same query on a cold fresh engine —
//!   bit-for-bit at one thread (and for the integer/RNG-deterministic
//!   algorithms at any thread count), within a tight `ℓ₁` tolerance for
//!   the float diffusions above one thread.
//! * **Work-budget trips are deterministic**: bit-identical across the
//!   plain and byte-compressed backends, because they fire on the
//!   deterministic work counters.
//!
//! `FAULT_PROPTEST_CASES` elevates the per-property case count (CI runs
//! the suite with more cases than the local default).

use plgc::cluster as lgc;
use plgc::{Algorithm, CancelToken, CsrCompressed, Engine, Query, QueryBudget, QueryError, Seed};
use proptest::prelude::*;
use std::time::Duration;

/// Per-property case count: `FAULT_PROPTEST_CASES` or the local default.
fn cases(default: u32) -> u32 {
    std::env::var("FAULT_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn small_graph() -> impl Strategy<Value = (plgc::Graph, Vec<u32>)> {
    (30usize..200, 0u64..1000).prop_map(|(n, s)| {
        let g = plgc::graph::gen::rand_local(n.max(30), 4, s);
        let comp = plgc::graph::largest_component(&g);
        let seeds: Vec<u32> = comp
            .iter()
            .step_by((comp.len() / 8).max(1))
            .copied()
            .collect();
        (g, seeds)
    })
}

fn make_algo(kind: usize, tweak: u64) -> Algorithm {
    match kind {
        0 => Algorithm::Nibble(lgc::NibbleParams {
            t_max: 6 + tweak as usize,
            eps: 1e-6,
            ..Default::default()
        }),
        1 => Algorithm::PrNibble(lgc::PrNibbleParams {
            alpha: 0.03 * (tweak + 1) as f64,
            eps: 1e-5,
            ..Default::default()
        }),
        2 => Algorithm::Hkpr(lgc::HkprParams {
            t: 2.0 + tweak as f64,
            n_levels: 8,
            eps: 1e-5,
            ..Default::default()
        }),
        3 => Algorithm::RandHkpr(lgc::RandHkprParams {
            walks: 1_000 + 500 * tweak as usize,
            max_len: 8,
            rng_seed: tweak,
            ..Default::default()
        }),
        _ => Algorithm::Evolving(lgc::EvolvingParams {
            max_steps: 10 + 5 * tweak as usize,
            rng_seed: tweak,
            ..Default::default()
        }),
    }
}

/// Whether this algorithm's parallel run is exactly reproducible at any
/// thread count (integer/RNG-stream determinism).
fn exact_at_any_threads(algo: &Algorithm) -> bool {
    matches!(algo, Algorithm::RandHkpr(_) | Algorithm::Evolving(_))
}

/// `ℓ₁` distance between two sparse diffusion vectors (union of supports).
fn l1_distance(a: &lgc::Diffusion, b: &lgc::Diffusion) -> f64 {
    let mut dist = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.p.len() || j < b.p.len() {
        match (a.p.get(i), b.p.get(j)) {
            (Some(&(va, ma)), Some(&(vb, mb))) if va == vb => {
                dist += (ma - mb).abs();
                i += 1;
                j += 1;
            }
            (Some(&(va, ma)), Some(&(vb, _))) if va < vb => {
                dist += ma.abs();
                i += 1;
            }
            (Some(_), Some(&(_, mb))) => {
                dist += mb.abs();
                j += 1;
            }
            (Some(&(_, ma)), None) => {
                dist += ma.abs();
                i += 1;
            }
            (None, Some(&(_, mb))) => {
                dist += mb.abs();
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    dist
}

/// Post-fault recovery check: the engine that just served a tripped
/// query must answer `q` exactly like a cold fresh engine at the same
/// thread count.
fn assert_recovered<B: plgc::CsrBackend>(
    engine: &Engine<'_, B>,
    g: &B,
    q: &Query,
    threads: usize,
    ctx: &str,
) {
    let warm = engine.try_run(q).unwrap_or_else(|e| {
        panic!("{ctx}: unbudgeted query failed after recovery: {e}");
    });
    let cold = Engine::builder(g).threads(threads).build().run(q);
    if threads == 1 || exact_at_any_threads(&q.algo) {
        assert_eq!(warm.diffusion.p, cold.diffusion.p, "{ctx}: bitwise");
        assert_eq!(warm.diffusion.stats, cold.diffusion.stats, "{ctx}");
        assert_eq!(warm.cluster, cold.cluster, "{ctx}");
        assert_eq!(warm.conductance, cold.conductance, "{ctx}");
    } else {
        assert!(
            l1_distance(&warm.diffusion, &cold.diffusion) < 1e-9,
            "{ctx}: ℓ₁ drift above tolerance"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// A pre-cancelled token trips every algorithm at its first
    /// checkpoint: typed error, zero-iteration partial, and the engine
    /// (with its recycled workspace) then answers the same query
    /// bit-identically to a cold one.
    #[test]
    fn pre_cancelled_token_trips_first_tick_and_recovers(
        (g, seeds) in small_graph(),
        kind in 0usize..5,
        tweak in 0u64..3,
        threads in 1usize..=4,
    ) {
        let engine = Engine::builder(&g).threads(threads).build();
        let token = CancelToken::new();
        token.cancel();
        let q = Query::new(Seed::single(seeds[0]), make_algo(kind, tweak));
        let cancelled = q
            .clone()
            .with_budget(QueryBudget::unlimited().with_cancel(token));
        match engine.try_run(&cancelled) {
            Err(QueryError::Cancelled(partial)) => {
                prop_assert_eq!(partial.stats.iterations, 0, "no iteration completed");
            }
            other => prop_assert!(false, "expected Cancelled, got {:?}", other.err()),
        }
        prop_assert!(engine.warm_workspaces() >= 1, "checkout recycled");
        assert_recovered(&engine, &g, &q, threads, "post-cancel");
        let stats = engine.lifecycle_stats();
        prop_assert_eq!(stats.cancelled, 1);
        prop_assert_eq!(stats.in_flight, 0);
    }

    /// An already-expired deadline trips at the first checkpoint, and a
    /// mid-flight cancellation from another OS thread stops the query
    /// without corrupting the pool.
    #[test]
    fn zero_deadline_trips_and_recovers(
        (g, seeds) in small_graph(),
        kind in 0usize..5,
        threads in 1usize..=2,
    ) {
        let engine = Engine::builder(&g).threads(threads).build();
        let q = Query::new(Seed::single(seeds[0]), make_algo(kind, 1));
        let expired = q
            .clone()
            .with_budget(QueryBudget::unlimited().with_deadline(Duration::ZERO));
        match engine.try_run(&expired) {
            Err(QueryError::DeadlineExceeded(partial)) => {
                prop_assert_eq!(partial.stats.iterations, 0);
            }
            other => prop_assert!(false, "expected DeadlineExceeded, got {:?}", other.err()),
        }
        assert_recovered(&engine, &g, &q, threads, "post-deadline");
    }

    /// Work-budget trips fire on the deterministic counters, so the
    /// outcome — trip-or-complete, the partial vector, and its stats —
    /// is bit-identical across the plain and byte-compressed backends.
    #[test]
    fn work_budget_trips_bitwise_identical_across_backends(
        (g, seeds) in small_graph(),
        kind in 0usize..5,
        tweak in 0u64..3,
        cap in 0u64..2000,
    ) {
        let compact = CsrCompressed::from_graph(&g);
        let plain = Engine::builder(&g).threads(1).build();
        let packed = Engine::builder(&compact).threads(1).build();
        let q = Query::new(Seed::single(seeds[0]), make_algo(kind, tweak))
            .with_budget(QueryBudget::unlimited().with_max_edges_traversed(cap));
        let a = plain.try_run(&q);
        let b = packed.try_run(&q);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.diffusion.p, y.diffusion.p);
                prop_assert_eq!(x.diffusion.stats, y.diffusion.stats);
                prop_assert_eq!(x.cluster, y.cluster);
            }
            (Err(QueryError::WorkBudgetExceeded(x)), Err(QueryError::WorkBudgetExceeded(y))) => {
                prop_assert_eq!(x.stats, y.stats, "trip at the same boundary");
                let (dx, dy) = (x.diffusion.as_ref().unwrap(), y.diffusion.as_ref().unwrap());
                prop_assert_eq!(&dx.p, &dy.p, "identical partial vectors");
                let (sx, sy) = (x.sweep.as_ref().unwrap(), y.sweep.as_ref().unwrap());
                prop_assert_eq!(&sx.conductances, &sy.conductances, "identical best-so-far cut");
            }
            (a, b) => prop_assert!(
                false,
                "backends disagreed on the trip: plain={:?} compressed={:?}",
                a.err(),
                b.err()
            ),
        }
        // Both engines keep answering unbudgeted queries bitwise-cold.
        let q = Query::new(Seed::single(seeds[0]), make_algo(kind, tweak));
        assert_recovered(&plain, &g, &q, 1, "post-work-trip plain");
        assert_recovered(&packed, &compact, &q, 1, "post-work-trip compressed");
    }

    /// `try_run_batch`: poisoned queries (bad seed, starved budget) fail
    /// alone with position-aligned typed errors while the rest of the
    /// batch matches the infallible path bit-for-bit.
    #[test]
    fn batch_isolates_poisoned_queries(
        (g, seeds) in small_graph(),
        threads in 1usize..=4,
        tweak in 0u64..3,
    ) {
        let engine = Engine::builder(&g).threads(threads).build();
        let good: Vec<Query> = (0..4)
            .map(|i| Query::new(Seed::single(seeds[i % seeds.len()]), make_algo(i, tweak)))
            .collect();
        let mut queries = good.clone();
        let bad_seed = g.num_vertices() as u32 + 7;
        queries.insert(1, Query::new(Seed::single(bad_seed), make_algo(0, 0)));
        let starved = CancelToken::new();
        starved.cancel();
        queries.insert(
            3,
            Query::new(Seed::single(seeds[0]), make_algo(4, tweak))
                .with_budget(QueryBudget::unlimited().with_cancel(starved)),
        );
        let out = engine.try_run_batch(&queries);
        prop_assert_eq!(out.len(), queries.len());
        match &out[1] {
            Err(QueryError::InvalidSeed(e)) => {
                prop_assert_eq!(e.vertex, bad_seed);
                prop_assert_eq!(e.num_vertices, g.num_vertices());
            }
            other => prop_assert!(false, "expected InvalidSeed, got {:?}", other),
        }
        prop_assert!(matches!(out[3], Err(QueryError::Cancelled(_))));
        let want = engine.run_batch(&good);
        for (got, want) in out
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 1 && i != 3)
            .map(|(_, r)| r)
            .zip(&want)
        {
            let got = got.as_ref().expect("healthy query completed");
            prop_assert_eq!(&got.diffusion.p, &want.diffusion.p);
            prop_assert_eq!(&got.cluster, &want.cluster);
        }
    }
}

/// Admission control: a full in-flight gate sheds with `Overloaded` and
/// a retry-after hint once latencies exist; the infallible path is never
/// shed.
#[test]
fn overloaded_sheds_with_retry_hint() {
    let g = plgc::graph::gen::two_cliques_bridge(10);
    let engine = Engine::builder(&g).threads(1).max_in_flight(0).build();
    let q = Query::new(
        Seed::single(0),
        Algorithm::PrNibble(lgc::PrNibbleParams::default()),
    );
    match engine.try_run(&q) {
        Err(QueryError::Overloaded {
            in_flight,
            limit,
            retry_after,
        }) => {
            assert_eq!(limit, 0);
            assert_eq!(in_flight, 0);
            // Cold start: no completions yet, so the hint falls back to
            // the floor instead of a useless `None` the client would
            // have to special-case.
            assert_eq!(retry_after, Some(plgc::RETRY_AFTER_FLOOR));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(engine.try_run(&q).unwrap_err().is_retryable());
    // The infallible path is exempt from the gate and primes the
    // latency estimate the next shed reports.
    let _ = engine.run(&q);
    match engine.try_run(&q) {
        Err(QueryError::Overloaded { retry_after, .. }) => {
            let hint = retry_after.expect("mean latency known now");
            assert!(hint >= plgc::RETRY_AFTER_FLOOR, "hint stays floored");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = engine.lifecycle_stats();
    assert_eq!(stats.shed_overloaded, 3);
    assert_eq!(stats.completed, 1);
    assert!(stats.shed_rate() > 0.0);
}

/// Seed validation happens at admission: no work, no workspace, typed
/// error — on single queries and NCP-style multi-vertex seeds alike.
#[test]
fn invalid_seed_rejected_at_admission() {
    let g = plgc::graph::gen::cycle(16);
    let engine = Engine::builder(&g).threads(1).build();
    let q = Query::new(
        Seed::set(vec![3, 99, 5]),
        Algorithm::Nibble(lgc::NibbleParams::default()),
    );
    match engine.try_run(&q) {
        Err(QueryError::InvalidSeed(e)) => {
            assert_eq!(e.vertex, 99);
            assert_eq!(e.num_vertices, 16);
            assert!(e.to_string().contains("99"));
        }
        other => panic!("expected InvalidSeed, got {other:?}"),
    }
    assert_eq!(engine.warm_workspaces(), 0, "no workspace was checked out");
    let stats = engine.lifecycle_stats();
    assert_eq!(stats.invalid_seed, 1);
    assert_eq!(stats.admitted, 0);
}

/// A budgeted NCP scan truncates gracefully: the profile built before
/// the trip comes back (a valid min-envelope), no panic, and an
/// unlimited rerun on the same engine is unaffected.
#[test]
fn ncp_budget_truncates_gracefully() {
    let g = plgc::graph::gen::rand_local(200, 5, 8);
    let engine = Engine::builder(&g).threads(1).build();
    let params = plgc::NcpParams {
        num_seeds: 3,
        alphas: vec![0.1],
        epsilons: vec![1e-4],
        rng_seed: 11,
        ..Default::default()
    };
    let full = engine.ncp(&params);
    let starved = CancelToken::new();
    starved.cancel();
    let truncated = engine.ncp(&plgc::NcpParams {
        budget: QueryBudget::unlimited().with_cancel(starved),
        ..params.clone()
    });
    assert!(
        truncated.is_empty(),
        "cancelled before the first grid point"
    );
    let capped = engine.ncp(&plgc::NcpParams {
        budget: QueryBudget::unlimited().with_max_edges_traversed(1),
        ..params.clone()
    });
    assert!(
        capped.len() <= full.len(),
        "capped scan is a prefix envelope"
    );
    let again = engine.ncp(&params);
    assert_eq!(full.len(), again.len(), "engine unaffected by the trips");
    for (a, b) in full.iter().zip(&again) {
        assert_eq!(a.size, b.size);
        assert_eq!(a.conductance, b.conductance);
    }
}

#[cfg(feature = "fault-inject")]
mod fault_injected {
    use super::*;
    use plgc::{FaultPlan, Pool, Trip};

    /// The error variant a [`Trip`] kind must surface as.
    fn matches_kind(err: &QueryError, kind: Trip) -> bool {
        err.trip() == Some(kind)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(cases(24)))]

        /// The core fault sweep: trip each algorithm at a random
        /// checkpoint tick, on either backend, at 1–4 threads. No
        /// panics, the right error variant, only-completed-work stats,
        /// full pool recovery, and post-fault bitwise determinism.
        #[test]
        fn random_tick_faults_never_corrupt_the_engine(
            (g, seeds) in small_graph(),
            kind in 0usize..5,
            tweak in 0u64..3,
            after_ticks in 0u64..20,
            trip_kind in 0usize..3,
            threads in 1usize..=4,
            compressed in 0usize..2,
        ) {
            let trip = [Trip::Deadline, Trip::WorkBudget, Trip::Cancelled][trip_kind];
            let plan = FaultPlan { after_ticks, kind: trip };
            let q = Query::new(Seed::single(seeds[0]), make_algo(kind, tweak));
            let faulty = q
                .clone()
                .with_budget(QueryBudget::unlimited().with_fault(plan));
            if compressed == 1 {
                let packed = CsrCompressed::from_graph(&g);
                let engine = Engine::builder(&packed).threads(threads).build();
                check_fault(&engine, &packed, &q, &faulty, trip, threads);
            } else {
                let engine = Engine::builder(&g).threads(threads).build();
                check_fault(&engine, &g, &q, &faulty, trip, threads);
            }
        }

        /// Injected faults through the *service* front door: a
        /// multi-tenant pool survives interleaved faulty and healthy
        /// queries, with per-graph counters attributing every trip.
        #[test]
        fn service_survives_interleaved_faults(
            (g, seeds) in small_graph(),
            specs in proptest::collection::vec((0usize..5, 0u64..3, 0u64..12, 0usize..3), 3..8),
        ) {
            let svc = plgc::Service::builder()
                .pool(Pool::shared(2))
                .add_graph("g", g.clone())
                .build();
            let engine = svc.engine("g").unwrap();
            let mut trips = 0u64;
            for &(kind, tweak, after_ticks, trip_kind) in &specs {
                let trip = [Trip::Deadline, Trip::WorkBudget, Trip::Cancelled][trip_kind];
                let q = Query::new(Seed::single(seeds[0]), make_algo(kind, tweak));
                let faulty = q.clone().with_budget(
                    QueryBudget::unlimited()
                        .with_fault(FaultPlan { after_ticks, kind: trip }),
                );
                if let Err(e) = engine.try_run(&faulty) {
                    prop_assert!(matches_kind(&e, trip), "wrong variant: {:?}", e);
                    trips += 1;
                }
                // A healthy query right after every fault.
                prop_assert!(engine.try_run(&q).is_ok());
            }
            let stats = svc.lifecycle("g").unwrap();
            prop_assert_eq!(
                stats.cancelled + stats.deadline_tripped + stats.work_tripped,
                trips
            );
            prop_assert_eq!(stats.in_flight, 0);
        }
    }

    /// One fault sweep instance; factored out so both backends share it.
    fn check_fault<B: plgc::CsrBackend>(
        engine: &Engine<'_, B>,
        g: &B,
        q: &Query,
        faulty: &Query,
        trip: Trip,
        threads: usize,
    ) {
        match engine.try_run(faulty) {
            Ok(_) => {
                // The plan outlived the query: every checkpoint passed.
                // The instrumentation must not have perturbed the run.
            }
            Err(e) => {
                assert!(matches_kind(&e, trip), "wrong variant for {trip:?}: {e:?}");
                let partial = e.partial().expect("mid-run trips carry partials");
                if let Some(d) = &partial.diffusion {
                    assert_eq!(d.stats.iterations, partial.stats.iterations);
                }
            }
        }
        assert!(engine.warm_workspaces() >= 1, "checkout recycled");
        assert_recovered(engine, g, q, threads, "post-fault");
        assert_eq!(engine.lifecycle_stats().in_flight, 0);
    }
}
