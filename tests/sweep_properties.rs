//! Property-based tests for the sweep cut: the parallel Theorem 1
//! implementation must agree with the sequential algorithm and with a
//! brute-force conductance oracle on arbitrary graphs and vectors.

use plgc::cluster::{sweep_cut_par, sweep_cut_seq};
use plgc::{Graph, Pool};
use proptest::prelude::*;

/// Arbitrary small graph + arbitrary sparse positive vector.
fn graph_and_vector() -> impl Strategy<Value = (Graph, Vec<(u32, f64)>)> {
    (
        2usize..40,
        prop::collection::vec((0u32..40, 0u32..40), 1..120),
        prop::collection::vec((0u32..40, 0.01f64..10.0), 1..25),
    )
        .prop_map(|(n, raw_edges, raw_p)| {
            let edges: Vec<(u32, u32)> = raw_edges
                .into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32))
                .collect();
            let g = Graph::from_edges(n, &edges);
            let mut p: Vec<(u32, f64)> =
                raw_p.into_iter().map(|(v, m)| (v % n as u32, m)).collect();
            p.sort_unstable_by_key(|&(v, _)| v);
            p.dedup_by_key(|&mut (v, _)| v);
            (g, p)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parallel_sweep_equals_sequential((g, p) in graph_and_vector(), threads in 1usize..=4) {
        let pool = Pool::new(threads);
        let s = sweep_cut_seq(&g, &p);
        let q = sweep_cut_par(&pool, &g, &p);
        prop_assert_eq!(&s.order, &q.order);
        prop_assert_eq!(&s.conductances, &q.conductances);
        prop_assert_eq!(s.best_size, q.best_size);
        prop_assert_eq!(s.best_conductance, q.best_conductance);
    }

    #[test]
    fn sweep_conductances_match_oracle((g, p) in graph_and_vector()) {
        let s = sweep_cut_seq(&g, &p);
        for j in 1..=s.order.len() {
            let direct = g.conductance(&s.order[..j]);
            let got = s.conductances[j - 1];
            prop_assert!(
                (direct.is_infinite() && got.is_infinite())
                    || (direct - got).abs() < 1e-9,
                "prefix {}: {} vs {}", j, direct, got
            );
        }
        // The reported best really is the minimum over prefixes.
        if s.best_size > 0 {
            let min = s
                .conductances
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            prop_assert_eq!(s.best_conductance, min);
        }
    }

    #[test]
    fn sweep_order_is_by_normalized_mass((g, p) in graph_and_vector()) {
        let s = sweep_cut_seq(&g, &p);
        let score = |v: u32| {
            let m = p.iter().find(|&&(u, _)| u == v).unwrap().1;
            m / g.degree(v) as f64
        };
        for w in s.order.windows(2) {
            let (a, b) = (score(w[0]), score(w[1]));
            prop_assert!(a > b || (a == b && w[0] < w[1]), "order violated: {} then {}", w[0], w[1]);
        }
    }
}
